"""Fully network-centric DHT batches: the ring protocol behind
``begin_network_reconciliation`` (PR 5).

Decision equivalence with every other store/mode lives in
``tests/integration/test_store_equivalence.py``; these tests pin the
protocol mechanics: which messages flow, how the controllers' per-
participant extension memos are reused and retired, and how the mode
degrades when a controller has lost a record.
"""

from __future__ import annotations

from repro.cdss import Participant
from repro.model import Insert, Modify
from repro.model.transactions import TransactionId
from repro.policy import TrustPolicy
from repro.store import DhtUpdateStore
from repro.workload import curated_schema

RAT_IMMUNE = ("rat", "prot1", "immune")
RAT_RESP = ("rat", "prot1", "cell-resp")
RAT_REVISED = ("rat", "prot1", "immune-revised")


def mutual_policy(pid, ids):
    policy = TrustPolicy()
    for other in ids:
        if other != pid:
            policy.trust_participant(other, 1)
    return policy


def build(store, ids):
    return {
        pid: Participant(
            pid, store, mutual_policy(pid, ids), network_centric=True
        )
        for pid in ids
    }


def controller_memo_keys(store):
    keys = set()
    for host in store._hosts.values():
        keys |= set(host.nc_memo)
    return keys


class TestProtocol:
    def test_nc_messages_flow_and_are_priced(self):
        store = DhtUpdateStore(curated_schema(), hosts=3)
        peers = build(store, [1, 2, 3])
        peers[1].execute([Insert("F", RAT_IMMUNE, 1)])
        peers[1].publish_and_reconcile()
        bytes_before = store.network.bytes_delivered
        peers[2].publish_and_reconcile()
        kinds = store.network.kind_counts
        assert kinds.get("nc_request", 0) >= 1
        assert kinds.get("nc_data", 0) >= 1
        assert kinds.get("nc_adjacency", 0) >= 1
        # The assembled payload pays real bytes on the simulated wire.
        assert store.network.bytes_delivered > bytes_before
        assert peers[2].instance.contains_row("F", RAT_IMMUNE)

    def test_cross_controller_chain_pays_member_verdict_fetches(self):
        # Find two publishers whose first transactions land on different
        # controllers, so the dependent root's derivation must query the
        # antecedent's controller for the reconciler's verdict.
        store = DhtUpdateStore(curated_schema(), hosts=4)
        ids = list(range(1, 9))
        owner_of = {
            pid: store._owner(f"txn:{TransactionId(pid, 0)}") for pid in ids
        }
        writer = ids[0]
        editor = next(
            pid for pid in ids[1:] if owner_of[pid] != owner_of[writer]
        )
        reader = next(
            pid for pid in ids if pid not in (writer, editor)
        )
        peers = build(store, [writer, editor, reader])

        peers[writer].execute([Insert("F", RAT_IMMUNE, writer)])
        peers[writer].publish_and_reconcile()
        peers[editor].publish_and_reconcile()  # fetch + apply the insert
        peers[editor].execute([Modify("F", RAT_IMMUNE, RAT_REVISED, editor)])
        peers[editor].publish_and_reconcile()

        before = dict(store.network.kind_counts)
        result = peers[reader].publish_and_reconcile()
        kinds = store.network.kind_counts
        assert kinds.get("nc_fetch_batch", 0) > before.get(
            "nc_fetch_batch", 0
        )
        assert kinds.get("nc_member_batch", 0) > before.get(
            "nc_member_batch", 0
        )
        assert peers[reader].instance.contains_row("F", RAT_REVISED)
        assert len(result.applied) == 2  # the chain arrived whole

    def test_deferral_rounds_reuse_the_controller_memo(self):
        store = DhtUpdateStore(curated_schema(), hosts=3)
        peers = build(store, [1, 2, 3])
        peers[1].execute([Insert("F", RAT_IMMUNE, 1)])
        peers[1].publish_and_reconcile()
        peers[2].execute([Insert("F", RAT_RESP, 2)])
        peers[2].publish_and_reconcile()
        result = peers[3].publish_and_reconcile()
        assert len(result.deferred) == 2

        # Both roots' per-participant extensions are memoized at their
        # controllers, and the driver's peer-coordinator record mirrors
        # the open deferred set the store reports.
        deferred = {TransactionId(1, 0), TransactionId(2, 0)}
        assert controller_memo_keys(store) == {(3, tid) for tid in deferred}
        assert store._nc_peers[3]["deferred"] == deferred
        _, _, store_deferred = store.decided_transactions(3)
        assert set(store_deferred) == deferred

        # While the applied set is unchanged, re-derivation is a memo
        # hit — and since the client retains the assembled payload, the
        # controllers answer with tiny ``nc_unchanged`` digest tokens
        # instead of re-shipping bodies.  The identical extension
        # objects re-attach (the client's incremental conflict index
        # validates by identity).
        unchanged_before = store.network.kind_counts.get("nc_unchanged", 0)
        data_bytes_before = store.network.kind_bytes.get("nc_data", 0)
        first = store.begin_network_reconciliation(3)
        second = store.begin_network_reconciliation(3)
        assert set(first.extensions) == deferred
        for tid in deferred:
            assert first.extensions[tid] is second.extensions[tid]
        # Both re-ship rounds were fully delta-encoded: nc_unchanged
        # tokens flowed and not one nc_data byte travelled.
        assert (
            store.network.kind_counts.get("nc_unchanged", 0)
            > unchanged_before
        )
        assert store.network.kind_bytes.get("nc_data", 0) == data_bytes_before

    def test_full_payload_fallback_when_retention_is_gone(self):
        # A client that no longer holds the retained payload (e.g. a
        # crash-restart wiped it) sends no digest; the controller falls
        # back to the full-payload re-ship from its memo.
        store = DhtUpdateStore(curated_schema(), hosts=3)
        peers = build(store, [1, 2, 3])
        peers[1].execute([Insert("F", RAT_IMMUNE, 1)])
        peers[1].publish_and_reconcile()
        peers[2].execute([Insert("F", RAT_RESP, 2)])
        peers[2].publish_and_reconcile()
        result = peers[3].publish_and_reconcile()
        assert len(result.deferred) == 2
        deferred = {TransactionId(1, 0), TransactionId(2, 0)}

        store._nc_retained[3].clear()
        data_bytes_before = store.network.kind_bytes.get("nc_data", 0)
        batch = store.begin_network_reconciliation(3)
        assert set(batch.extensions) == deferred
        # The memoized extensions travelled again in full, as nc_data.
        assert store.network.kind_bytes.get("nc_data", 0) > data_bytes_before
        assert controller_memo_keys(store) == {(3, tid) for tid in deferred}

    def test_final_verdicts_retire_the_controller_memo(self):
        from repro.core import Resolution

        store = DhtUpdateStore(curated_schema(), hosts=3)
        peers = build(store, [1, 2, 3])
        peers[1].execute([Insert("F", RAT_IMMUNE, 1)])
        peers[1].publish_and_reconcile()
        peers[2].execute([Insert("F", RAT_RESP, 2)])
        peers[2].publish_and_reconcile()
        peers[3].publish_and_reconcile()
        assert controller_memo_keys(store)

        [group] = peers[3].open_conflicts()
        chosen = next(
            i for i, opt in enumerate(group.options)
            if opt.effect == RAT_IMMUNE
        )
        peers[3].resolve([Resolution(group.group_id, chosen)])
        # Applied/rejected verdicts reached every controller: nothing
        # left to serve participant 3, so its memo entries are gone.
        assert not {
            key for key in controller_memo_keys(store) if key[0] == 3
        }
        assert store._nc_peers[3]["deferred"] == set()

    def test_lost_root_degrades_like_the_client_centric_path(self):
        store = DhtUpdateStore(curated_schema(), hosts=3)
        peers = build(store, [1, 2, 3])
        peers[1].execute([Insert("F", RAT_IMMUNE, 1)])
        peers[1].publish_and_reconcile()
        peers[2].execute([Insert("F", RAT_RESP, 2)])
        peers[2].publish_and_reconcile()
        # Surgically lose one root's controller record (the state a
        # failed, un-replicated controller would leave behind).
        lost = TransactionId(1, 0)
        controller = store._hosts[store._owner(f"txn:{lost}")]
        controller.txns.pop(lost)
        result = peers[3].publish_and_reconcile()
        # The lost root silently drops out — exactly what txn_unknown
        # does client-centrically — and the surviving root decides.
        assert [str(t) for t in result.applied] == ["X2:0"]
        assert peers[3].instance.contains_row("F", RAT_RESP)
