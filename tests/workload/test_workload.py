"""Tests for the synthetic SWISS-PROT workload generator."""

from __future__ import annotations

import random

import pytest

from repro.errors import WorkloadError
from repro.instance import MemoryInstance
from repro.model import Insert, Modify
from repro.workload import (
    Vocabulary,
    WorkloadConfig,
    WorkloadGenerator,
    ZipfSampler,
    curated_schema,
)


class TestZipfSampler:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(WorkloadError):
            ZipfSampler(0)
        with pytest.raises(WorkloadError):
            ZipfSampler(10, s=0)

    def test_samples_in_range(self):
        sampler = ZipfSampler(50, 1.5, random.Random(1))
        for _ in range(1000):
            assert 0 <= sampler.sample() < 50

    def test_heavy_tail_rank_ordering(self):
        # Rank 0 must be sampled far more often than rank 10.
        sampler = ZipfSampler(100, 1.5, random.Random(2))
        counts = [0] * 100
        for _ in range(20000):
            counts[sampler.sample()] += 1
        assert counts[0] > counts[10] > 0

    def test_probability_sums_to_one(self):
        sampler = ZipfSampler(20, 1.5)
        total = sum(sampler.probability(i) for i in range(20))
        assert total == pytest.approx(1.0)

    def test_probability_matches_zipf_law(self):
        sampler = ZipfSampler(100, 2.0)
        # p(rank 1) / p(rank 2) = 2^s = 4.
        ratio = sampler.probability(0) / sampler.probability(1)
        assert ratio == pytest.approx(4.0, rel=1e-9)

    def test_probability_out_of_range(self):
        with pytest.raises(WorkloadError):
            ZipfSampler(5).probability(5)

    def test_deterministic_given_seed(self):
        a = ZipfSampler(50, 1.5, random.Random(7))
        b = ZipfSampler(50, 1.5, random.Random(7))
        assert [a.sample() for _ in range(100)] == [
            b.sample() for _ in range(100)
        ]


class TestVocabulary:
    def test_default_sizes(self):
        vocab = Vocabulary()
        assert len(vocab.organisms) == 12
        assert len(vocab.functions) == 400
        assert vocab.key_count() == 12 * 400

    def test_key_enumeration_unique(self):
        vocab = Vocabulary(organisms=3, proteins_per_organism=5)
        keys = {vocab.key(i) for i in range(vocab.key_count())}
        assert len(keys) == vocab.key_count()

    def test_key_out_of_range(self):
        vocab = Vocabulary(organisms=2, proteins_per_organism=2)
        with pytest.raises(WorkloadError):
            vocab.key(4)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(WorkloadError):
            Vocabulary(organisms=0)
        with pytest.raises(WorkloadError):
            Vocabulary(functions=0)
        with pytest.raises(WorkloadError):
            Vocabulary(proteins_per_organism=0)

    def test_protein_names_are_swissprot_style(self):
        assert Vocabulary().protein(7) == "P00007"


class TestWorkloadConfig:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(transaction_size=0)
        with pytest.raises(WorkloadError):
            WorkloadConfig(insert_fraction=1.5)
        with pytest.raises(WorkloadError):
            WorkloadConfig(xref_mean=-1)


class TestWorkloadGenerator:
    def test_updates_apply_cleanly_to_local_instance(self):
        schema = curated_schema()
        generator = WorkloadGenerator(WorkloadConfig(transaction_size=3))
        instance = MemoryInstance(schema)
        for _ in range(50):
            updates = generator.transaction_updates(1, instance)
            instance.apply_all(updates)  # must never raise

    def test_transaction_size_respected(self):
        schema = curated_schema()
        generator = WorkloadGenerator(
            WorkloadConfig(transaction_size=4, xref_mean=0)
        )
        instance = MemoryInstance(schema)
        updates = generator.transaction_updates(1, instance)
        f_updates = [u for u in updates if u.relation == "F"]
        assert len(f_updates) == 4

    def test_xrefs_accompany_inserts(self):
        schema = curated_schema()
        generator = WorkloadGenerator(
            WorkloadConfig(transaction_size=1, insert_fraction=1.0)
        )
        instance = MemoryInstance(schema)
        updates = generator.transaction_updates(1, instance)
        assert isinstance(updates[0], Insert) and updates[0].relation == "F"
        xrefs = [u for u in updates if u.relation == "Xref"]
        assert len(xrefs) >= 7  # mean 7.3 -> 7 or 8

    def test_xref_mean_obeyed(self):
        schema = curated_schema()
        generator = WorkloadGenerator(
            WorkloadConfig(transaction_size=1, insert_fraction=1.0)
        )
        instance = MemoryInstance(schema)
        counts = []
        for _ in range(120):
            updates = generator.transaction_updates(2, instance)
            instance.apply_all(updates)
            counts.append(len([u for u in updates if u.relation == "Xref"]))
        mean = sum(counts) / len(counts)
        assert 6.8 <= mean <= 7.8  # 7.3 +/- sampling noise

    def test_replacements_read_current_local_row(self):
        schema = curated_schema()
        generator = WorkloadGenerator(
            WorkloadConfig(transaction_size=1, insert_fraction=0.0)
        )
        instance = MemoryInstance(schema)
        # Seed the instance so replacements are possible.
        seeder = WorkloadGenerator(
            WorkloadConfig(transaction_size=5, insert_fraction=1.0, xref_mean=0)
        )
        instance.apply_all(seeder.transaction_updates(1, instance))
        updates = generator.transaction_updates(1, instance)
        assert len(updates) == 1
        update = updates[0]
        assert isinstance(update, Modify)
        key = schema.relation("F").key_of(update.old_row)
        assert instance.get("F", key) == update.old_row

    def test_streams_are_deterministic_per_seed(self):
        schema = curated_schema()

        def stream(seed):
            generator = WorkloadGenerator(WorkloadConfig(seed=seed))
            instance = MemoryInstance(schema)
            out = []
            for _ in range(20):
                updates = generator.transaction_updates(1, instance)
                instance.apply_all(updates)
                out.extend(map(str, updates))
            return out

        assert stream(5) == stream(5)
        assert stream(5) != stream(6)

    def test_participants_get_independent_streams(self):
        schema = curated_schema()
        generator = WorkloadGenerator(WorkloadConfig())
        inst1 = MemoryInstance(schema)
        inst2 = MemoryInstance(schema)
        ups1 = generator.transaction_updates(1, inst1)
        ups2 = generator.transaction_updates(2, inst2)
        # Same seed, different participants: almost surely different picks.
        assert [str(u) for u in ups1] != [str(u) for u in ups2]

    def test_collisions_between_participants_happen(self):
        # The whole point of the workload: peers touch overlapping keys.
        schema = curated_schema()
        generator = WorkloadGenerator(
            WorkloadConfig(transaction_size=1, insert_fraction=1.0, xref_mean=0)
        )
        keys_by_peer = {}
        for peer in (1, 2):
            instance = MemoryInstance(schema)
            keys = set()
            for _ in range(60):
                updates = generator.transaction_updates(peer, instance)
                instance.apply_all(updates)
                for update in updates:
                    keys.add(schema.relation("F").key_of(update.row))
            keys_by_peer[peer] = keys
        assert keys_by_peer[1] & keys_by_peer[2]
