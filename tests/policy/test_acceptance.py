"""Unit tests for acceptance rules and pri_i computation (Section 4)."""

from __future__ import annotations

import pytest

from repro.errors import PolicyError
from repro.model import Insert, make_transaction
from repro.policy import (
    AcceptanceRule,
    TrustPolicy,
    always,
    attribute_equals,
    origin_is,
    policy_from_priorities,
)


RAT1 = ("rat", "prot1", "cell-metab")
MOUSE2 = ("mouse", "prot2", "immune")


class TestAcceptanceRule:
    def test_negative_priority_rejected(self):
        with pytest.raises(PolicyError):
            AcceptanceRule(always(), -1)

    def test_matches(self, schema):
        rule = AcceptanceRule(origin_is(2), 5)
        assert rule.matches(schema, Insert("F", RAT1, 2))
        assert not rule.matches(schema, Insert("F", RAT1, 3))


class TestPriorityOf:
    def test_untrusted_transaction_gets_zero(self, schema):
        policy = TrustPolicy().trust_participant(2, 1)
        txn = make_transaction(3, 0, [Insert("F", RAT1, 3)])
        assert policy.priority_of(schema, txn) == 0
        assert not policy.trusts(schema, txn)

    def test_trusted_transaction_gets_rule_priority(self, schema):
        policy = TrustPolicy().trust_participant(3, 2)
        txn = make_transaction(3, 0, [Insert("F", RAT1, 3)])
        assert policy.priority_of(schema, txn) == 2
        assert policy.trusts(schema, txn)

    def test_max_of_matching_rules(self, schema):
        policy = (
            TrustPolicy()
            .trust_participant(3, 1)
            .trust(attribute_equals("F", "organism", "rat"), 7)
        )
        txn = make_transaction(3, 0, [Insert("F", RAT1, 3)])
        assert policy.priority_of(schema, txn) == 7

    def test_any_untrusted_update_zeroes_the_transaction(self, schema):
        # pri_i(X) = 0 if ANY update in X is untrusted.
        policy = TrustPolicy().trust(
            attribute_equals("F", "organism", "rat"), 4
        )
        txn = make_transaction(
            3, 0, [Insert("F", RAT1, 3), Insert("F", MOUSE2, 3)]
        )
        assert policy.priority_of(schema, txn) == 0

    def test_mixed_priorities_take_max(self, schema):
        policy = (
            TrustPolicy()
            .trust(attribute_equals("F", "organism", "rat"), 4)
            .trust(attribute_equals("F", "organism", "mouse"), 2)
        )
        txn = make_transaction(
            3, 0, [Insert("F", RAT1, 3), Insert("F", MOUSE2, 3)]
        )
        assert policy.priority_of(schema, txn) == 4

    def test_zero_priority_rule_is_not_trust(self, schema):
        policy = TrustPolicy().trust(always(), 0)
        txn = make_transaction(3, 0, [Insert("F", RAT1, 3)])
        assert policy.priority_of(schema, txn) == 0

    def test_trust_all(self, schema):
        policy = TrustPolicy().trust_all(1)
        txn = make_transaction(99, 0, [Insert("F", RAT1, 99)])
        assert policy.priority_of(schema, txn) == 1

    def test_empty_policy_trusts_nothing(self, schema):
        policy = TrustPolicy()
        txn = make_transaction(3, 0, [Insert("F", RAT1, 3)])
        assert policy.priority_of(schema, txn) == 0


class TestPolicyConstruction:
    def test_policy_from_priorities(self, schema):
        # p2's policy from Figure 1: p1 at priority 2, p3 at priority 1.
        policy = policy_from_priorities([(1, 2), (3, 1)])
        txn1 = make_transaction(1, 0, [Insert("F", RAT1, 1)])
        txn3 = make_transaction(3, 0, [Insert("F", RAT1, 3)])
        assert policy.priority_of(schema, txn1) == 2
        assert policy.priority_of(schema, txn3) == 1

    def test_rules_property_and_len(self):
        policy = policy_from_priorities([(1, 2), (3, 1)])
        assert len(policy) == 2
        assert all(isinstance(r, AcceptanceRule) for r in policy.rules)

    def test_str_form(self):
        policy = TrustPolicy().trust_participant(2, 1)
        assert "origin = p2" in str(policy)
