"""Unit tests for update predicates."""

from __future__ import annotations

from repro.model import Delete, Insert, Modify
from repro.policy import (
    always,
    attribute_equals,
    attribute_in,
    attribute_satisfies,
    both,
    either,
    negate,
    on_relation,
    origin_in,
    origin_is,
)


RAT1 = ("rat", "prot1", "cell-metab")
RAT1_IMMUNE = ("rat", "prot1", "immune")


class TestOriginPredicates:
    def test_origin_is(self, schema):
        pred = origin_is(3)
        assert pred(schema, Insert("F", RAT1, 3))
        assert not pred(schema, Insert("F", RAT1, 2))

    def test_origin_in(self, schema):
        pred = origin_in([1, 2])
        assert pred(schema, Insert("F", RAT1, 1))
        assert pred(schema, Insert("F", RAT1, 2))
        assert not pred(schema, Insert("F", RAT1, 3))

    def test_origin_in_equality(self):
        assert origin_in([1, 2]) == origin_in({2, 1})
        assert hash(origin_in([1, 2])) == hash(origin_in([2, 1]))

    def test_always(self, schema):
        assert always()(schema, Insert("F", RAT1, 99))


class TestContentPredicates:
    def test_on_relation(self, xref_schema):
        pred = on_relation("F")
        assert pred(xref_schema, Insert("F", RAT1, 3))
        assert not pred(xref_schema, Insert("Xref", ("r", "p", "d", "a"), 3))

    def test_attribute_equals_on_insert(self, schema):
        pred = attribute_equals("F", "organism", "rat")
        assert pred(schema, Insert("F", RAT1, 3))
        assert not pred(schema, Insert("F", ("mouse", "p", "f"), 3))

    def test_attribute_equals_on_delete_uses_read_row(self, schema):
        pred = attribute_equals("F", "function", "cell-metab")
        assert pred(schema, Delete("F", RAT1, 3))

    def test_attribute_equals_on_modify_uses_written_row(self, schema):
        pred = attribute_equals("F", "function", "immune")
        assert pred(schema, Modify("F", RAT1, RAT1_IMMUNE, 3))
        assert not pred(schema, Modify("F", RAT1_IMMUNE, RAT1, 3))

    def test_attribute_equals_wrong_relation(self, xref_schema):
        pred = attribute_equals("F", "organism", "rat")
        assert not pred(xref_schema, Insert("Xref", ("rat", "p", "d", "a"), 3))

    def test_attribute_in(self, schema):
        pred = attribute_in("F", "organism", {"rat", "mouse"})
        assert pred(schema, Insert("F", RAT1, 3))
        assert not pred(schema, Insert("F", ("human", "p", "f"), 3))

    def test_attribute_satisfies(self, schema):
        def is_immune_related(value):
            return "immune" in str(value)

        pred = attribute_satisfies("F", "function", is_immune_related)
        assert pred(schema, Insert("F", RAT1_IMMUNE, 3))
        assert not pred(schema, Insert("F", RAT1, 3))


class TestCombinators:
    def test_both(self, schema):
        pred = both(origin_is(3), attribute_equals("F", "organism", "rat"))
        assert pred(schema, Insert("F", RAT1, 3))
        assert not pred(schema, Insert("F", RAT1, 2))
        assert not pred(schema, Insert("F", ("mouse", "p", "f"), 3))

    def test_either(self, schema):
        pred = either(origin_is(1), origin_is(2))
        assert pred(schema, Insert("F", RAT1, 1))
        assert pred(schema, Insert("F", RAT1, 2))
        assert not pred(schema, Insert("F", RAT1, 3))

    def test_negate(self, schema):
        pred = negate(origin_is(3))
        assert not pred(schema, Insert("F", RAT1, 3))
        assert pred(schema, Insert("F", RAT1, 2))

    def test_str_forms_are_readable(self):
        pred = both(origin_is(1), negate(on_relation("F")))
        text = str(pred)
        assert "origin = p1" in text
        assert "not relation = F" in text
