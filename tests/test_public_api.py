"""API-surface snapshot: ``repro.__all__`` and the driver registry.

A name disappearing from (or silently joining) the public surface is an
API change and must show up in review as an edit to this file.
"""

from __future__ import annotations

import repro
from repro.confed.hooks import EVENTS
from repro.store import available_stores, store_capabilities

EXPECTED_ALL = {
    # Confederation layer
    "Confederation",
    "ConfederationConfig",
    "ConfederationReport",
    "HookBus",
    "ParticipantSnapshot",
    # Legacy entry points (deprecation shims)
    "CDSS",
    "Simulation",
    "SimulationConfig",
    # Participants, the engine, and the session/scheduler layers (PR 3)
    "Decision",
    "Participant",
    "ParticipantState",
    "ReconcileResult",
    "ReconcileSession",
    "Reconciler",
    "Resolution",
    "SerialScheduler",
    "ThreadedScheduler",
    "resolve_conflicts",
    # Fault tolerance (PR 6)
    "FaultController",
    "FaultPlan",
    "HostCrash",
    "MessageFault",
    "ParticipantRestart",
    # Stores and the driver registry
    "CentralUpdateStore",
    "DhtUpdateStore",
    "DurableUpdateStore",
    "MemoryUpdateStore",
    "StoreCapabilities",
    "UpdateStore",
    "available_stores",
    "create_store",
    "register_store",
    "store_capabilities",
    # Instances
    "Instance",
    "MemoryInstance",
    "SqliteInstance",
    # Policies
    "AcceptanceRule",
    "TrustPolicy",
    "always",
    "attribute_equals",
    "origin_is",
    "policy_from_priorities",
    # Workload and metrics
    "WorkloadConfig",
    "WorkloadGenerator",
    "curated_schema",
    "state_ratio",
    # Model
    "AttributeDef",
    "Delete",
    "ForeignKey",
    "Insert",
    "Modify",
    "RelationSchema",
    "Schema",
    "Transaction",
    "TransactionId",
    "Update",
    "flatten",
    "flatten_transactions",
    "make_transaction",
    "updates_conflict",
    # Errors
    "ConfigError",
    "ConstraintViolation",
    "FaultError",
    "FlattenError",
    "NetworkError",
    "PolicyError",
    "PublicationError",
    "ReconciliationError",
    "ReproError",
    "ResolutionError",
    "RetryExhaustedError",
    "SchedulerError",
    "SchemaError",
    "StoreError",
    "UnknownTransactionError",
    "UpdateError",
    "WorkloadError",
}


def test_public_all_is_exactly_the_snapshot():
    assert set(repro.__all__) == EXPECTED_ALL


def test_every_public_name_resolves():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_builtin_registry_contents():
    assert available_stores() == ["central", "dht", "durable", "memory"]


def test_registry_capability_snapshot():
    assert store_capabilities("memory").as_dict() == {
        "ships_context_free": True,
        "shared_pair_memo": True,
        "durable": False,
        "network_centric_batches": True,
    }
    assert store_capabilities("central").as_dict() == {
        "ships_context_free": True,
        "shared_pair_memo": True,
        "durable": True,
        "network_centric_batches": True,
    }
    # PR 5: the DHT assembles fully network-centric batches over the
    # ring — every built-in backend now serves Figure 3's store-computed
    # column.
    assert store_capabilities("dht").as_dict() == {
        "ships_context_free": True,
        "shared_pair_memo": True,
        "durable": False,
        "network_centric_batches": True,
    }
    # PR 9: the honest persistent backend — full history on a database
    # file, bounded resident memory, crash recovery.
    assert store_capabilities("durable").as_dict() == {
        "ships_context_free": True,
        "shared_pair_memo": True,
        "durable": True,
        "network_centric_batches": True,
    }


def test_hook_event_names_are_stable():
    assert EVENTS == (
        "publish",
        "epoch_start",
        "decision",
        "conflict",
        "cache_stats",
        "reconcile",
        "epoch_end",
        "fault",
        "retry",
        "degraded",
        "recovery",
    )
