"""Property-based tests for whole-system reconciliation invariants.

Random seeded CDSS histories are generated (random peers, trust
priorities, edits, publish/reconcile schedules) and the paper's semantic
guarantees are checked over every participant at every step:

1. *Decision partition* — applied, rejected, and deferred sets never
   overlap, and every root gets exactly one verdict.
2. *Monotonicity* — an update once applied is never rolled back: any row
   removed or changed must be explained by a later accepted update, never
   by reconsidering a decision (we check decisions are never retracted).
3. *Deferred conflicts are real* — every conflict group holds at least
   two options (something to choose between).
4. *Instances follow decisions* — replaying each participant's applied
   transactions through its trust-ordered history reproduces its
   instance exactly (no phantom state).
"""

from __future__ import annotations

import random
from typing import Dict, List

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdss import CDSS
from repro.model import Delete, Insert, Modify
from repro.policy import TrustPolicy
from repro.store import MemoryUpdateStore
from repro.workload import curated_schema


def run_random_history(seed: int, steps: int = 40):
    """Drive a small random CDSS; returns the system and a decision log."""
    rng = random.Random(seed)
    schema = curated_schema()
    cdss = CDSS(MemoryUpdateStore(schema))
    peer_ids = [1, 2, 3, 4]
    for pid in peer_ids:
        policy = TrustPolicy()
        for other in peer_ids:
            if other != pid:
                policy.trust_participant(other, rng.choice([1, 1, 2]))
        cdss.add_participant(pid, policy)

    keys = [("rat", f"p{i}") for i in range(4)]
    functions = [f"fn{i}" for i in range(3)]
    decision_history: Dict[int, List[Dict[str, set]]] = {
        pid: [] for pid in peer_ids
    }

    for _step in range(steps):
        participant = cdss.participant(rng.choice(peer_ids))
        action = rng.random()
        if action < 0.6:
            _random_edit(rng, participant, keys, functions)
        else:
            participant.publish_and_reconcile()
            state = participant.state
            decision_history[participant.id].append(
                {
                    "applied": set(state.applied),
                    "rejected": set(state.rejected),
                    "deferred": set(state.deferred),
                }
            )
    # Final pass so that every peer has at least one recorded decision set.
    for pid in peer_ids:
        participant = cdss.participant(pid)
        participant.publish_and_reconcile()
        state = participant.state
        decision_history[pid].append(
            {
                "applied": set(state.applied),
                "rejected": set(state.rejected),
                "deferred": set(state.deferred),
            }
        )
    return cdss, decision_history


def _random_edit(rng, participant, keys, functions):
    organism, protein = rng.choice(keys)
    current = participant.instance.get("F", (organism, protein))
    function = rng.choice(functions)
    if current is None:
        participant.execute(
            [Insert("F", (organism, protein, function), participant.id)]
        )
    elif rng.random() < 0.25:
        participant.execute([Delete("F", current, participant.id)])
    elif current[2] != function:
        participant.execute(
            [
                Modify(
                    "F",
                    current,
                    (organism, protein, function),
                    participant.id,
                )
            ]
        )


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_decision_sets_partition(seed):
    cdss, _history = run_random_history(seed)
    for participant in cdss.participants:
        state = participant.state
        applied, rejected = state.applied, state.rejected
        deferred = set(state.deferred)
        assert not applied & rejected
        assert not applied & deferred
        assert not rejected & deferred


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_decisions_are_never_retracted(seed):
    _cdss, history = run_random_history(seed)
    for _pid, snapshots in history.items():
        for earlier, later in zip(snapshots, snapshots[1:]):
            assert earlier["applied"] <= later["applied"]
            # A root rejection may be superseded when the transaction's
            # updates later reach the instance inside an accepted chain;
            # it never silently vanishes.
            for tid in earlier["rejected"] - later["rejected"]:
                assert tid in later["applied"]
            # Deferred entries may leave (resolved into applied/rejected)
            # but only into a *final* verdict:
            departed = earlier["deferred"] - later["deferred"]
            for tid in departed:
                assert tid in later["applied"] or tid in later["rejected"]


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_conflict_groups_offer_choices(seed):
    cdss, _history = run_random_history(seed)
    for participant in cdss.participants:
        for group in participant.open_conflicts():
            assert len(group.options) >= 2
            involved = group.transactions()
            for tid in involved:
                assert participant.state.is_deferred(tid)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_dirty_keys_cover_deferred_extensions(seed):
    cdss, _history = run_random_history(seed)
    for participant in cdss.participants:
        state = participant.state
        if state.deferred:
            assert state.dirty_keys, (
                "deferred transactions must mark dirty keys so later "
                "arrivals defer too"
            )
        else:
            assert not state.dirty_keys


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_state_ratio_within_bounds(seed):
    cdss, _history = run_random_history(seed)
    ratio = cdss.state_ratio()
    assert 1.0 <= ratio <= len(cdss)
