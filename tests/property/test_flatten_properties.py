"""Property-based tests for update-sequence flattening.

The defining property of ``flatten`` (Section 4.2): applying the
flattened set to any instance in the sequence's starting state produces
the same final state as applying the original sequence — with all
intermediate steps removed.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.instance import MemoryInstance
from repro.model import Insert, flatten
from repro.model.flatten import keys_read, keys_touched

from tests.property.strategies import PROP_SCHEMA, valid_update_sequences


def materialise(initial):
    instance = MemoryInstance(PROP_SCHEMA)
    for row in initial.values():
        instance.apply(Insert("R", row, 0))
    return instance


@given(valid_update_sequences())
@settings(max_examples=200)
def test_flatten_preserves_final_state(case):
    initial, updates = case
    direct = materialise(initial)
    direct.apply_all(updates)

    flattened = materialise(initial)
    flattened.apply_set(flatten(PROP_SCHEMA, updates))

    assert direct.snapshot() == flattened.snapshot()


@given(valid_update_sequences())
@settings(max_examples=200)
def test_flatten_output_is_minimised(case):
    """No composable reader/writer pair survives minimisation: a key never
    has both a plain Delete and a plain Insert, and never loses and
    regains the identical row."""
    _initial, updates = case
    flattened = flatten(PROP_SCHEMA, updates)
    readers = {}
    writers = {}
    for update in flattened:
        read = update.read_row()
        if read is not None:
            readers[PROP_SCHEMA.relation("R").key_of(read)] = update
        written = update.written_row()
        if written is not None:
            writers[PROP_SCHEMA.relation("R").key_of(written)] = update
    for key, reader in readers.items():
        writer = writers.get(key)
        if writer is None or writer is reader:
            continue
        assert reader.read_row() != writer.written_row(), (
            "identical consume/produce pair should have been composed away"
        )
        from repro.model import Delete, Insert

        assert not (
            isinstance(reader, Delete) and isinstance(writer, Insert)
        ), "Delete+Insert on one key should have merged into a Modify"


@given(valid_update_sequences())
@settings(max_examples=200)
def test_flatten_has_one_reader_and_one_writer_per_key(case):
    _initial, updates = case
    read_keys = set()
    written_keys = set()
    rel = PROP_SCHEMA.relation("R")
    for update in flatten(PROP_SCHEMA, updates):
        read = update.read_row()
        if read is not None:
            key = rel.key_of(read)
            assert key not in read_keys, f"key {key} consumed twice"
            read_keys.add(key)
        written = update.written_row()
        if written is not None:
            key = rel.key_of(written)
            assert key not in written_keys, f"key {key} written twice"
            written_keys.add(key)


@given(valid_update_sequences())
@settings(max_examples=200)
def test_flatten_never_grows_the_sequence(case):
    _initial, updates = case
    assert len(flatten(PROP_SCHEMA, updates)) <= max(len(updates), 0)


@given(valid_update_sequences())
@settings(max_examples=200)
def test_flattened_keys_are_a_subset_of_touched_keys(case):
    _initial, updates = case
    touched = keys_touched(PROP_SCHEMA, updates)
    for update in flatten(PROP_SCHEMA, updates):
        for key in update.keys_touched(PROP_SCHEMA):
            assert key in touched


@given(valid_update_sequences())
@settings(max_examples=200)
def test_keys_read_only_reports_preexisting_state(case):
    initial, updates = case
    initial_keys = {("R", (key,)) for key in initial}
    for key in keys_read(PROP_SCHEMA, updates):
        assert key in initial_keys, (
            "a valid sequence can only consume pre-existing rows it was "
            "given; anything else is a chain-tracking bug"
        )


@given(valid_update_sequences())
@settings(max_examples=100)
def test_flatten_of_noop_roundtrip_is_empty(case):
    initial, updates = case
    # Applying a sequence and then its exact inverse flattens to nothing.
    inverse = []
    for update in reversed(updates):
        inverse.append(_invert(update))
    assert flatten(PROP_SCHEMA, list(updates) + inverse) == []


def _invert(update):
    from repro.model import Delete, Insert, Modify

    if isinstance(update, Insert):
        return Delete("R", update.row, update.origin)
    if isinstance(update, Delete):
        return Insert("R", update.row, update.origin)
    return Modify("R", update.new_row, update.old_row, update.origin)


# ----------------------------------------------------------------------
# Single-pass flattening (FlattenResult) against the legacy three-call
# derivation and against a reference fixpoint minimiser.


def _reference_minimise(schema, nets):
    """The seed's O(n²)-restart fixpoint minimiser, kept as an oracle."""
    from repro.model.flatten import _compose_pair, _reader_at, _writer_at

    updates = list(nets)
    changed = True
    while changed:
        changed = False
        readers = {}
        writers = {}
        for update in updates:
            read_key = _reader_at(schema, update)
            if read_key is not None:
                readers[read_key] = update
            write_key = _writer_at(schema, update)
            if write_key is not None:
                writers[write_key] = update
        for key, reader in readers.items():
            writer = writers.get(key)
            if writer is None or writer is reader:
                continue
            replacement = _compose_pair(reader, writer)
            if replacement is None:
                continue
            updates = [u for u in updates if u is not reader and u is not writer]
            updates.extend(replacement)
            changed = True
            break
    return updates


def _reference_flatten(schema, updates):
    from repro.model.flatten import _net_update, _sort_key, _trace

    nets = [
        update
        for chain in _trace(schema, updates)
        if (update := _net_update(chain)) is not None
    ]
    nets = _reference_minimise(schema, nets)
    nets.sort(key=lambda u: _sort_key(schema, u))
    return nets


@given(valid_update_sequences())
@settings(max_examples=200)
def test_worklist_minimise_matches_reference_fixpoint(case):
    _initial, updates = case
    assert flatten(PROP_SCHEMA, updates) == _reference_flatten(
        PROP_SCHEMA, updates
    )


@given(valid_update_sequences())
@settings(max_examples=200)
def test_flatten_once_matches_the_three_call_derivation(case):
    from repro.model.flatten import flatten_once

    _initial, updates = case
    result = flatten_once(PROP_SCHEMA, updates)
    assert list(result.operations) == flatten(PROP_SCHEMA, updates)
    assert result.keys_read == keys_read(PROP_SCHEMA, updates)
    assert result.keys_touched == keys_touched(PROP_SCHEMA, updates)


@given(valid_update_sequences())
@settings(max_examples=100)
def test_flatten_once_traces_at_most_once(case):
    from repro.model.flatten import flatten_once, trace_runs

    _initial, updates = case
    before = trace_runs()
    flatten_once(PROP_SCHEMA, updates)
    # One chain trace for real sequences; zero- and one-update sequences
    # short-circuit without tracing at all.
    expected = 1 if len(updates) > 1 else 0
    assert trace_runs() == before + expected
