"""Property-based tests for the conflict predicate and instance semantics."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.instance import MemoryInstance
from repro.model import Insert, updates_conflict

from tests.property.strategies import (
    PROP_SCHEMA,
    single_updates,
    valid_update_sequences,
)


@given(single_updates(), single_updates())
@settings(max_examples=300)
def test_conflict_predicate_is_symmetric(left, right):
    assert updates_conflict(PROP_SCHEMA, left, right) == updates_conflict(
        PROP_SCHEMA, right, left
    )


@given(single_updates())
@settings(max_examples=100)
def test_update_never_conflicts_with_itself(update):
    assert not updates_conflict(PROP_SCHEMA, update, update)


@given(single_updates(), single_updates())
@settings(max_examples=300)
def test_conflicts_require_a_shared_key(left, right):
    left_keys = set(left.keys_touched(PROP_SCHEMA))
    right_keys = set(right.keys_touched(PROP_SCHEMA))
    if not (left_keys & right_keys):
        assert not updates_conflict(PROP_SCHEMA, left, right)


@given(single_updates(), single_updates())
@settings(max_examples=300)
def test_conflicting_writes_cannot_both_apply(left, right):
    """Two *write* updates that conflict must never both be applicable to
    any single instance state (soundness of the conflict predicate for
    insert/insert and write/write collisions)."""
    if not updates_conflict(PROP_SCHEMA, left, right):
        return
    if left.written_row() is None or right.written_row() is None:
        return
    if left.read_row() is not None or right.read_row() is not None:
        return
    # Both are pure inserts that conflict: same key, different rows.
    instance = MemoryInstance(PROP_SCHEMA)
    assert not instance.can_apply_all([left, right])


@given(valid_update_sequences())
@settings(max_examples=150)
def test_can_apply_all_agrees_with_apply_all(case):
    initial, updates = case
    probe = MemoryInstance(PROP_SCHEMA)
    for row in initial.values():
        probe.apply(Insert("R", row, 0))
    assert probe.can_apply_all(updates)
    probe.apply_all(updates)  # must not raise


@given(valid_update_sequences(), st.randoms(use_true_random=False))
@settings(max_examples=150)
def test_apply_all_failure_leaves_instance_unchanged(case, rng):
    """Atomicity: if a sequence cannot fully apply, nothing applies.

    The sequence was valid against ``initial``; dropping one of the
    pre-existing rows it depends on usually breaks it partway through.
    """
    initial, updates = case
    if not initial:
        return
    dropped = rng.choice(sorted(initial))
    instance = MemoryInstance(PROP_SCHEMA)
    for key, row in initial.items():
        if key != dropped:
            instance.apply(Insert("R", row, 0))
    before = instance.snapshot()
    if instance.can_apply_all(updates):
        instance.apply_all(updates)  # still fine without the dropped row
        return
    try:
        instance.apply_all(updates)
        raised = False
    except Exception:
        raised = True
    assert raised
    assert instance.snapshot() == before
