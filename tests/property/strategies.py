"""Hypothesis strategies shared by the property-based tests.

The central generator produces *valid update sequences*: sequences that
could actually be applied, in order, to an instance with a known starting
state.  Flattening and conflict semantics are only defined over valid
sequences, so generating them directly (by simulating a little database
while drawing operations) gives far better coverage than filtering.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from hypothesis import strategies as st

from repro.model import (
    AttributeDef,
    Delete,
    Insert,
    Modify,
    RelationSchema,
    Schema,
    Update,
)

#: The schema every property test speaks: one relation, single-column key.
PROP_SCHEMA = Schema(
    [
        RelationSchema(
            "R",
            [AttributeDef("k", int), AttributeDef("v", int)],
            key=("k",),
        )
    ]
)

_KEYS = st.integers(min_value=0, max_value=5)
_VALUES = st.integers(min_value=0, max_value=4)


@st.composite
def valid_update_sequences(
    draw, max_length: int = 12, origin: int = 1
) -> Tuple[Dict[int, Tuple], List[Update]]:
    """Draw ``(initial_state, updates)`` where the updates apply cleanly.

    ``initial_state`` maps keys to pre-existing rows; the update sequence
    is guaranteed to be applicable to an instance holding exactly those
    rows (and nothing else).
    """
    initial: Dict[int, Tuple] = {}
    for key in draw(st.sets(_KEYS, max_size=4)):
        initial[key] = (key, draw(_VALUES))

    state: Dict[int, Tuple] = dict(initial)
    updates: List[Update] = []
    length = draw(st.integers(min_value=0, max_value=max_length))
    for _ in range(length):
        present = sorted(state)
        absent = sorted(set(range(6)) - set(state))
        choices = []
        if absent:
            choices.append("insert")
        if present:
            choices.extend(["delete", "modify"])
        if not choices:
            break
        op = draw(st.sampled_from(choices))
        if op == "insert":
            key = draw(st.sampled_from(absent))
            row = (key, draw(_VALUES))
            updates.append(Insert("R", row, origin))
            state[key] = row
        elif op == "delete":
            key = draw(st.sampled_from(present))
            updates.append(Delete("R", state[key], origin))
            del state[key]
        else:
            key = draw(st.sampled_from(present))
            old_row = state[key]
            new_key = draw(st.sampled_from(sorted(set(absent) | {key})))
            new_row = (new_key, draw(_VALUES))
            if new_row == old_row:
                continue  # identity replacement is not a valid update
            updates.append(Modify("R", old_row, new_row, origin))
            del state[key]
            state[new_key] = new_row
    return initial, updates


@st.composite
def single_updates(draw, origin: Optional[int] = None) -> Update:
    """One arbitrary (not necessarily applicable) update."""
    op = draw(st.sampled_from(["insert", "delete", "modify"]))
    who = origin if origin is not None else draw(st.integers(1, 3))
    key = draw(_KEYS)
    value = draw(_VALUES)
    if op == "insert":
        return Insert("R", (key, value), who)
    if op == "delete":
        return Delete("R", (key, value), who)
    other_key = draw(_KEYS)
    other_value = draw(_VALUES)
    if (other_key, other_value) == (key, value):
        other_value = (other_value + 1) % 6
    return Modify("R", (key, value), (other_key, other_value), who)
