"""Property: generated configs round-trip through dicts *exactly*.

``ConfederationConfig`` documents ``from_dict(to_dict(cfg)) == cfg`` and
JSON-safety of the dict form; the unit tests pin a handful of shapes.
Here Hypothesis generates whole valid configs — including nested
``WorkloadConfig`` and ``FaultPlan`` values with crashes, message faults
and restarts — and checks the contract for all of them, with a
``json.dumps``/``json.loads`` detour to prove nothing in the dict form
depends on Python-only types (tuples, int keys) surviving
serialisation.

The strategies generate within each dataclass's validated domain
(``at_epoch >= 1``, ``recover_at_epoch > at_epoch``, probabilities in
[0, 1], restart participants drawn from the peer set), so every
generated config also passes ``validate()`` — pinned as a property of
its own, because a config that round-trips but fails validation would
be useless in a file.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.confed.config import ConfederationConfig
from repro.errors import ConfigError
from repro.net.faults import FaultPlan, HostCrash, MessageFault, ParticipantRestart
from repro.workload.generator import WorkloadConfig

# Nested composites (config → plan → crashes/faults) make the very
# first draws slow enough to trip the too_slow health check on a cold
# cache; the suite's own runtime stays in single-digit seconds.
_SETTINGS = settings(
    max_examples=100, suppress_health_check=[HealthCheck.too_slow]
)

_PEER_IDS = st.integers(min_value=1, max_value=20)


@st.composite
def host_crashes(draw) -> HostCrash:
    at_epoch = draw(st.integers(min_value=1, max_value=30))
    recovers = draw(st.booleans())
    recover_at = (
        draw(st.integers(min_value=at_epoch + 1, max_value=at_epoch + 20))
        if recovers
        else None
    )
    return HostCrash(
        host=f"host:{draw(st.integers(min_value=0, max_value=9))}",
        at_epoch=at_epoch,
        recover_at_epoch=recover_at,
    )


def message_faults() -> st.SearchStrategy[MessageFault]:
    return st.builds(
        MessageFault,
        kind=st.sampled_from(
            ("txn_stored", "decision_recorded", "epoch_is", "txn_data")
        ),
        action=st.sampled_from(("drop", "duplicate", "delay")),
        probability=st.floats(
            min_value=0.0, max_value=1.0, allow_nan=False
        ),
        times=st.none() | st.integers(min_value=1, max_value=50),
        delay_factor=st.floats(
            min_value=0.0, max_value=16.0, allow_nan=False
        ),
    )


@st.composite
def fault_plans(draw, peers) -> FaultPlan:
    restarts = ()
    if peers:
        restarts = tuple(
            ParticipantRestart(
                participant=draw(st.sampled_from(sorted(peers))),
                at_epoch=draw(st.integers(min_value=1, max_value=30)),
            )
            for _ in range(draw(st.integers(min_value=0, max_value=3)))
        )
    return FaultPlan(
        seed=draw(st.integers(min_value=0, max_value=2**31)),
        crashes=tuple(draw(st.lists(host_crashes(), max_size=3))),
        messages=tuple(draw(st.lists(message_faults(), max_size=4))),
        restarts=restarts,
    )


def workload_configs() -> st.SearchStrategy[WorkloadConfig]:
    return st.builds(
        WorkloadConfig,
        transaction_size=st.integers(min_value=1, max_value=8),
        insert_fraction=st.floats(
            min_value=0.0, max_value=1.0, allow_nan=False
        ),
        xref_mean=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        zipf_s=st.floats(min_value=0.5, max_value=3.0, allow_nan=False),
        organisms=st.integers(min_value=1, max_value=20),
        proteins_per_organism=st.integers(min_value=1, max_value=500),
        functions=st.integers(min_value=1, max_value=500),
        seed=st.integers(min_value=0, max_value=2**31),
    )


@st.composite
def confederation_configs(draw) -> ConfederationConfig:
    peers = tuple(sorted(draw(st.sets(_PEER_IDS, max_size=6))))
    trust = None
    if peers and draw(st.booleans()):
        trust = {
            pid: {
                other: draw(st.integers(min_value=0, max_value=5))
                for other in draw(
                    st.sets(st.sampled_from(peers), max_size=len(peers))
                )
            }
            for pid in draw(st.sets(st.sampled_from(peers), max_size=3))
        }
    faults = draw(st.none() | fault_plans(peers))
    return ConfederationConfig(
        store=draw(st.sampled_from(("memory", "central", "dht"))),
        store_options=draw(
            st.dictionaries(
                st.sampled_from(("hosts", "replication_factor", "path")),
                st.integers(min_value=1, max_value=8) | st.text(max_size=8),
                max_size=2,
            )
        ),
        instance_backend=draw(st.sampled_from(("memory", "sqlite"))),
        peers=peers,
        trust=trust,
        trust_priority=draw(st.integers(min_value=0, max_value=5)),
        network_centric=draw(
            st.sampled_from((False, True, "client", "store"))
        ),
        engine_caching=draw(st.booleans()),
        workload=draw(st.none() | workload_configs()),
        reconciliation_interval=draw(st.integers(min_value=0, max_value=10)),
        rounds=draw(st.integers(min_value=0, max_value=10)),
        final_reconcile=draw(st.booleans()),
        schedule_mode=draw(st.sampled_from(("serial", "threaded", "async"))),
        schedule_workers=draw(
            st.none() | st.integers(min_value=1, max_value=32)
        ),
        faults=faults,
    )


@given(confederation_configs())
@_SETTINGS
def test_config_roundtrips_exactly(config):
    assert ConfederationConfig.from_dict(config.to_dict()) == config


@given(confederation_configs())
@_SETTINGS
def test_config_survives_a_json_detour(config):
    wire = json.dumps(config.to_dict())
    assert ConfederationConfig.from_dict(json.loads(wire)) == config


@given(confederation_configs())
@_SETTINGS
def test_generated_configs_validate(config):
    assert config.validate() is config
    rebuilt = ConfederationConfig.from_dict(config.to_dict())
    assert rebuilt.validate() is rebuilt


@given(confederation_configs(), st.integers(min_value=-8, max_value=0))
@_SETTINGS
def test_non_positive_worker_counts_never_validate(config, workers):
    """An in-flight cap below one is meaningless for every concurrent
    schedule; with ``schedule_mode="async"`` the same config must also
    be rejected before it ever reaches the event loop."""
    broken = ConfederationConfig.from_dict(
        dict(config.to_dict(), schedule_mode="async", schedule_workers=workers)
    )
    with pytest.raises(ConfigError, match="schedule_workers"):
        broken.validate()


@given(confederation_configs())
@_SETTINGS
def test_dict_form_is_canonical(config):
    """to_dict is a pure function of the config: the round-tripped
    config renders the identical dict (idempotent serialisation)."""
    assert ConfederationConfig.from_dict(config.to_dict()).to_dict() == (
        config.to_dict()
    )
