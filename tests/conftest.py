"""Shared fixtures: the paper's running-example schema and helpers."""

from __future__ import annotations

import pytest

from repro.model import (
    AttributeDef,
    ForeignKey,
    RelationSchema,
    Schema,
)


@pytest.fixture
def function_relation() -> RelationSchema:
    """The paper's F(organism, protein, function) with key (organism, protein)."""
    return RelationSchema(
        "F",
        [AttributeDef("organism"), AttributeDef("protein"), AttributeDef("function")],
        key=("organism", "protein"),
    )


@pytest.fixture
def schema(function_relation: RelationSchema) -> Schema:
    """A single-relation schema around the paper's F relation."""
    return Schema([function_relation])


@pytest.fixture
def xref_schema(function_relation: RelationSchema) -> Schema:
    """The evaluation-section schema: F plus a cross-reference table.

    The paper's workload inserts ~7.3 cross-reference tuples per new
    primary-key insertion; Xref references F's key.
    """
    xref = RelationSchema(
        "Xref",
        [
            AttributeDef("organism"),
            AttributeDef("protein"),
            AttributeDef("db"),
            AttributeDef("accession"),
        ],
        key=("organism", "protein", "db", "accession"),
    )
    return Schema(
        [function_relation, xref],
        foreign_keys=[
            ForeignKey("Xref", ("organism", "protein"), "F", ("organism", "protein"))
        ],
    )
