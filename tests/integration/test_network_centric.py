"""Network-centric reconciliation: Figure 3's store-computed mode.

The defining requirement: a network-centric participant must reach
*exactly* the same decisions and instance as a client-centric one — the
modes trade communication for local work, never outcomes.
"""

from __future__ import annotations

import pytest

from repro.cdss import CDSS
from repro.model import Insert
from repro.policy import TrustPolicy, policy_from_priorities
from repro.store import CentralUpdateStore, DhtUpdateStore, MemoryUpdateStore
from repro.workload import WorkloadConfig, WorkloadGenerator, curated_schema


RAT_IMMUNE = ("rat", "prot1", "immune")
RAT_RESP = ("rat", "prot1", "cell-resp")
MOUSE = ("mouse", "prot2", "immune")


@pytest.fixture(params=["memory", "central", "dht"])
def store_factory(request):
    def factory():
        schema = curated_schema()
        if request.param == "memory":
            return MemoryUpdateStore(schema)
        if request.param == "dht":
            return DhtUpdateStore(schema, hosts=4)
        return CentralUpdateStore(schema)

    return factory


def run_workload(store, network_centric: bool):
    """A seeded conflict-heavy run; returns snapshots and decision sets."""
    cdss = CDSS(store)
    peer_ids = [1, 2, 3, 4]
    participants = []
    for pid in peer_ids:
        policy = TrustPolicy()
        for other in peer_ids:
            if other != pid:
                policy.trust_participant(other, 1)
        participants.append(
            cdss.add_participant(pid, policy)
        )
        participants[-1].network_centric = network_centric

    generator = WorkloadGenerator(WorkloadConfig(transaction_size=2, seed=31))
    for _round in range(3):
        for participant in participants:
            for _ in range(3):
                updates = generator.transaction_updates(
                    participant.id, participant.instance
                )
                if updates:
                    participant.execute(updates)
            participant.publish_and_reconcile()
    snapshots = {p.id: p.instance.snapshot() for p in participants}
    decisions = {
        p.id: (
            sorted(map(str, p.state.applied)),
            sorted(map(str, p.state.rejected)),
            sorted(map(str, p.state.deferred)),
        )
        for p in participants
    }
    return snapshots, decisions


class TestNetworkCentricEquivalence:
    def test_same_outcomes_as_client_centric(self, store_factory):
        client = run_workload(store_factory(), network_centric=False)
        network = run_workload(store_factory(), network_centric=True)
        assert client == network

    def test_deferred_transactions_reconsidered(self, store_factory):
        store = store_factory()
        cdss = CDSS(store)
        p1 = cdss.add_participant(1, policy_from_priorities([(2, 1), (3, 1)]))
        p2 = cdss.add_participant(2, policy_from_priorities([(1, 1), (3, 1)]))
        p3 = cdss.add_participant(3, policy_from_priorities([(1, 1), (2, 1)]))
        p3.network_centric = True

        p1.execute([Insert("F", RAT_IMMUNE, 1)])
        p1.publish_and_reconcile()
        p2.execute([Insert("F", RAT_RESP, 2)])
        p2.publish_and_reconcile()
        result = p3.publish_and_reconcile()
        assert len(result.deferred) == 2
        assert len(p3.open_conflicts()) == 1

        # Resolution still works in network-centric mode.
        from repro.core import Resolution

        [group] = p3.open_conflicts()
        chosen = next(
            i for i, opt in enumerate(group.options) if opt.effect == RAT_IMMUNE
        )
        p3.resolve([Resolution(group.group_id, chosen)])
        assert p3.instance.contains_row("F", RAT_IMMUNE)
        assert p3.open_conflicts() == []

        # The next network-centric reconciliation carries no stale roots.
        p1.execute([Insert("F", MOUSE, 1)])
        p1.publish_and_reconcile()
        result = p3.publish_and_reconcile()
        assert [str(t) for t in result.accepted] == ["X1:1"]

    def test_client_only_store_declines_network_centric(self, schema):
        # The base contract still raises for backends that do not
        # implement the store-computed batch (PR 5 closed the gap for
        # every built-in, so a minimal subclass stands in).
        from repro.store.base import UpdateStore

        class ClientOnly(MemoryUpdateStore):
            begin_network_reconciliation = (
                UpdateStore.begin_network_reconciliation
            )

        store = ClientOnly(schema)
        store.register_participant(1, TrustPolicy())
        with pytest.raises(NotImplementedError):
            store.begin_network_reconciliation(1)

    def test_dht_serves_store_computed_batches(self, schema):
        # The last Figure-3 quadrant: the distributed store returns a
        # fully-assembled per-participant batch.
        store = DhtUpdateStore(schema, hosts=3)
        store.register_participant(
            1, TrustPolicy().trust_participant(2, 1)
        )
        store.register_participant(2, TrustPolicy())
        from repro.cdss import Participant

        publisher = Participant(2, store, TrustPolicy(), register=False)
        publisher.execute([Insert("F", RAT_IMMUNE, 2)])
        publisher.publish()
        batch = store.begin_network_reconciliation(1)
        assert batch.network_centric
        [root] = batch.roots
        assert str(root.tid) == "X2:0"
        assert set(batch.extensions) == {root.tid}
        assert set(batch.conflicts) == {root.tid}

    def test_batch_reports_mode(self, store_factory):
        store = store_factory()
        store.register_participant(1, TrustPolicy().trust_participant(2, 1))
        store.register_participant(2, TrustPolicy())
        client_batch = store.begin_reconciliation(1)
        assert not client_batch.network_centric
        network_batch = store.begin_network_reconciliation(1)
        assert network_batch.network_centric
        assert network_batch.extensions == {}
        assert network_batch.conflicts == {}
