"""The paper's soft-state claim, verified end to end.

"Each client contains only soft state; it is possible to reconstruct the
entire state of the participant, up to his or her last reconciliation,
from the update store."  A participant rebuilt via
:meth:`Participant.rebuild` must match the live one: same instance, same
decision sets, same open conflicts — and continue operating (publish,
reconcile, resolve) seamlessly.  Verified over all four stores, and over
a central store closed and reopened from disk.
"""

from __future__ import annotations

import pytest

from repro.cdss import CDSS, Participant, Simulation, SimulationConfig
from repro.model import Insert
from repro.store import (
    CentralUpdateStore,
    DhtUpdateStore,
    DurableUpdateStore,
    MemoryUpdateStore,
)
from repro.workload import WorkloadConfig, curated_schema


def build_store(kind, schema, path=None):
    if kind == "memory":
        return MemoryUpdateStore(schema)
    if kind == "central":
        return CentralUpdateStore(schema, path or ":memory:")
    if kind == "durable":
        return DurableUpdateStore(schema, path=path or ":memory:", cache_size=8)
    return DhtUpdateStore(schema, hosts=5)


@pytest.mark.parametrize("kind", ["memory", "central", "durable", "dht"])
def test_rebuilt_participant_matches_live(kind, tmp_path):
    schema = curated_schema()
    store = build_store(kind, schema, path=str(tmp_path / "rebuild.db"))
    config = SimulationConfig(
        participants=4,
        reconciliation_interval=3,
        rounds=3,
        workload=WorkloadConfig(transaction_size=2, seed=23),
    )
    simulation = Simulation(config, store=store)
    simulation.run()

    for live in simulation.cdss.participants:
        rebuilt = Participant.rebuild(live.id, store, live.policy)
        assert rebuilt.instance.snapshot() == live.instance.snapshot()
        assert rebuilt.state.applied == live.state.applied
        assert rebuilt.state.rejected == live.state.rejected
        assert set(rebuilt.state.deferred) == set(live.state.deferred)
        assert rebuilt.state.dirty_keys == live.state.dirty_keys
        rebuilt_groups = {g.group_id for g in rebuilt.open_conflicts()}
        live_groups = {g.group_id for g in live.open_conflicts()}
        assert rebuilt_groups == live_groups


def test_rebuilt_participant_continues_operating():
    schema = curated_schema()
    store = MemoryUpdateStore(schema)
    cdss = CDSS(store)
    p1, p2 = cdss.add_mutually_trusting_participants([1, 2])
    p1.execute([Insert("F", ("rat", "prot1", "immune"), 1)])
    p1.publish_and_reconcile()
    p2.publish_and_reconcile()

    # p2's machine dies; it rebuilds from the store and keeps going.
    reborn = Participant.rebuild(2, store, p2.policy)
    assert reborn.instance.contains_row("F", ("rat", "prot1", "immune"))
    # Sequence numbers continue where they left off (no tid reuse).
    txn = reborn.execute([Insert("F", ("mouse", "prot2", "defense"), 2)])
    assert txn.tid.sequence == p2._sequence
    reborn.publish_and_reconcile()
    result = p1.publish_and_reconcile()
    assert len(result.accepted) == 1
    assert p1.instance.contains_row("F", ("mouse", "prot2", "defense"))


def test_central_store_survives_restart(tmp_path):
    schema = curated_schema()
    path = str(tmp_path / "store.db")

    with CentralUpdateStore(schema, path) as store:
        cdss = CDSS(store)
        p1, p2 = cdss.add_mutually_trusting_participants([1, 2])
        p1.execute([Insert("F", ("rat", "prot1", "immune"), 1)])
        p1.publish_and_reconcile()
        p2.publish_and_reconcile()
        live_snapshot = p2.instance.snapshot()
        policy2 = p2.policy

    # Process restart: a brand-new store object over the same file.
    with CentralUpdateStore(schema, path) as reopened:
        # Policies are process state; re-attach them.
        reopened._policies[1] = policy2  # not used below, but realistic
        reopened._policies[2] = policy2
        rebuilt = Participant.rebuild(2, reopened, policy2)
        assert rebuilt.instance.snapshot() == live_snapshot
        assert reopened.transaction_count() == 1
        assert reopened.last_reconciliation_epoch(2) >= 1
