"""Observational equivalence of the four update stores.

The same seeded workload, replayed through the memory, central-sqlite,
durable-file, and simulated-DHT stores, must leave every participant
with an identical instance and identical decision bookkeeping — the
stores may only differ in cost and persistence, never in outcome.

Since PR 3 this also pins the DHT's shipping parity: the DHT with
store-derived context-free extensions (and the shared pair memo), the
DHT computing everything client-side, and the central store must make
*byte-identical* accept/reject/defer decisions, in the same order, at
every reconciliation.
"""

from __future__ import annotations

import pytest

from repro.cdss import Simulation, SimulationConfig
from repro.confed import Confederation, ConfederationConfig, HookBus
from repro.store import (
    CentralUpdateStore,
    DhtUpdateStore,
    DurableUpdateStore,
    MemoryUpdateStore,
)
from repro.workload import WorkloadConfig, curated_schema


def run_with(store_name: str, seed: int):
    schema = curated_schema()
    if store_name == "memory":
        store = MemoryUpdateStore(schema)
    elif store_name == "central":
        store = CentralUpdateStore(schema)
    elif store_name == "durable":
        store = DurableUpdateStore(schema, cache_size=8)
    else:
        store = DhtUpdateStore(schema, hosts=5)
    config = SimulationConfig(
        participants=5,
        reconciliation_interval=3,
        rounds=3,
        workload=WorkloadConfig(transaction_size=2, seed=seed),
    )
    simulation = Simulation(config, store=store)
    report = simulation.run()
    snapshots = {
        p.id: p.instance.snapshot() for p in simulation.cdss.participants
    }
    decisions = {
        p.id: (
            sorted(map(str, p.state.applied)),
            sorted(map(str, p.state.rejected)),
            sorted(map(str, p.state.deferred)),
        )
        for p in simulation.cdss.participants
    }
    return snapshots, decisions, report.state_ratio


@pytest.mark.parametrize("seed", [3, 17])
def test_stores_produce_identical_outcomes(seed):
    memory = run_with("memory", seed)
    central = run_with("central", seed)
    durable = run_with("durable", seed)
    dht = run_with("dht", seed)
    assert memory[0] == central[0] == durable[0] == dht[0]  # instances
    assert memory[1] == central[1] == durable[1] == dht[1]  # decisions
    assert memory[2] == central[2] == durable[2] == dht[2]  # state ratio


# ----------------------------------------------------------------------
# PR 3: byte-identical decision pins for DHT shipping parity


def run_with_decision_log(
    store_name,
    store_options,
    seed,
    network_centric=False,
    schedule_mode="serial",
):
    """Replay the seeded evaluation schedule, recording every decision
    event (participant, recno, tid, verdict) in emission order."""
    config = ConfederationConfig(
        store=store_name,
        store_options=store_options,
        peers=(1, 2, 3, 4, 5),
        reconciliation_interval=3,
        rounds=3,
        final_reconcile=True,
        network_centric=network_centric,
        schedule_mode=schedule_mode,
        workload=WorkloadConfig(transaction_size=2, seed=seed),
    )
    log = []
    hooks = HookBus()
    hooks.on_decision(
        lambda **kw: log.append(
            (kw["participant"], kw["recno"], str(kw["tid"]), str(kw["decision"]))
        )
    )
    with Confederation(config, hooks=hooks) as confed:
        report = confed.run()
        snapshots = {
            p.id: p.instance.snapshot() for p in confed.participants
        }
    return log, snapshots, report.state_ratio


@pytest.mark.parametrize("seed", [7, 29])
def test_dht_shipping_decisions_byte_identical(seed):
    shipped = run_with_decision_log("dht", {"hosts": 5}, seed)
    client_computed = run_with_decision_log(
        "dht", {"hosts": 5, "ship_context_free": False}, seed
    )
    central = run_with_decision_log("central", {}, seed)
    # The decision *stream* — order included — must match exactly:
    # adopting a shipped extension is only legal when it provably equals
    # the local computation.
    assert shipped[0] == client_computed[0] == central[0]
    assert shipped[1] == client_computed[1] == central[1]
    assert shipped[2] == client_computed[2] == central[2]


# ----------------------------------------------------------------------
# PR 5: the full equivalence matrix, including fully store-computed
# DHT batches (Figure 3's last quadrant)


@pytest.mark.parametrize("seed", [7, 29])
def test_equivalence_matrix_with_store_computed_batches(seed):
    """dht-store-computed / dht-shipped / dht-client-computed / central
    and durable (each client- and store-computed) must emit
    byte-identical decision streams: the store deriving a participant's
    extensions against its applied set is only legal because it provably
    equals the client's own computation — and since PR 9, persisting the
    history to a file with a tiny body page cache must not perturb a
    single verdict either."""
    matrix = [
        run_with_decision_log("dht", {"hosts": 5}, seed, network_centric="store"),
        run_with_decision_log("dht", {"hosts": 5}, seed),
        run_with_decision_log(
            "dht", {"hosts": 5, "ship_context_free": False}, seed
        ),
        run_with_decision_log("central", {}, seed),
        run_with_decision_log("central", {}, seed, network_centric="store"),
        run_with_decision_log("durable", {"cache_size": 4}, seed),
        run_with_decision_log(
            "durable", {"cache_size": 4}, seed, network_centric="store"
        ),
    ]
    reference = matrix[0]
    for other in matrix[1:]:
        assert other[0] == reference[0]  # decision stream, order included
        assert other[1] == reference[1]  # replica snapshots
        assert other[2] == reference[2]  # state ratio


# ----------------------------------------------------------------------
# PR 10: the matrix under the async schedule


def per_participant(log):
    """Group a decision log per participant, preserving stream order."""
    streams = {}
    for participant, *rest in log:
        streams.setdefault(participant, []).append(tuple(rest))
    return streams


@pytest.mark.parametrize("seed", [7, 29])
def test_equivalence_matrix_under_async_schedule(seed):
    """The store-equivalence pin holds under ``schedule_mode="async"``:
    every backend (client- and store-computed) must emit the *same
    global* decision stream — the single event loop interleaves whole
    synchronous segments in deterministic task order, so even the
    cross-participant order is pinned — and that stream must agree
    per participant with the threaded schedule's."""
    matrix = [
        run_with_decision_log(
            "dht", {"hosts": 5}, seed, network_centric="store",
            schedule_mode="async",
        ),
        run_with_decision_log("dht", {"hosts": 5}, seed, schedule_mode="async"),
        run_with_decision_log(
            "dht", {"hosts": 5, "ship_context_free": False}, seed,
            schedule_mode="async",
        ),
        run_with_decision_log("memory", {}, seed, schedule_mode="async"),
        run_with_decision_log("central", {}, seed, schedule_mode="async"),
        run_with_decision_log(
            "central", {}, seed, network_centric="store", schedule_mode="async"
        ),
        run_with_decision_log(
            "durable", {"cache_size": 4}, seed, schedule_mode="async"
        ),
    ]
    reference = matrix[0]
    for other in matrix[1:]:
        assert other[0] == reference[0]  # global stream, order included
        assert other[1] == reference[1]  # replica snapshots
        assert other[2] == reference[2]  # state ratio
    # Across schedules the contract is per participant: async and
    # threaded share publish order and RNG substreams, so each
    # participant's stream is byte-identical between the two modes.
    threaded = run_with_decision_log(
        "central", {}, seed, schedule_mode="threaded"
    )
    assert per_participant(reference[0]) == per_participant(threaded[0])
    assert reference[1] == threaded[1]
    assert reference[2] == threaded[2]
