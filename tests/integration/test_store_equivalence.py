"""Observational equivalence of the three update stores.

The same seeded workload, replayed through the memory, central-sqlite,
and simulated-DHT stores, must leave every participant with an identical
instance and identical decision bookkeeping — the stores may only differ
in cost, never in outcome.
"""

from __future__ import annotations

import pytest

from repro.cdss import Simulation, SimulationConfig
from repro.store import CentralUpdateStore, DhtUpdateStore, MemoryUpdateStore
from repro.workload import WorkloadConfig, curated_schema


def run_with(store_name: str, seed: int):
    schema = curated_schema()
    if store_name == "memory":
        store = MemoryUpdateStore(schema)
    elif store_name == "central":
        store = CentralUpdateStore(schema)
    else:
        store = DhtUpdateStore(schema, hosts=5)
    config = SimulationConfig(
        participants=5,
        reconciliation_interval=3,
        rounds=3,
        workload=WorkloadConfig(transaction_size=2, seed=seed),
    )
    simulation = Simulation(config, store=store)
    report = simulation.run()
    snapshots = {
        p.id: p.instance.snapshot() for p in simulation.cdss.participants
    }
    decisions = {
        p.id: (
            sorted(map(str, p.state.applied)),
            sorted(map(str, p.state.rejected)),
            sorted(map(str, p.state.deferred)),
        )
        for p in simulation.cdss.participants
    }
    return snapshots, decisions, report.state_ratio


@pytest.mark.parametrize("seed", [3, 17])
def test_stores_produce_identical_outcomes(seed):
    memory = run_with("memory", seed)
    central = run_with("central", seed)
    dht = run_with("dht", seed)
    assert memory[0] == central[0] == dht[0]  # instances
    assert memory[1] == central[1] == dht[1]  # decisions
    assert memory[2] == central[2] == dht[2]  # state ratio
