"""Every example script must run cleanly — they are living documentation."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_cleanly(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples should narrate what they do"


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert "dht_network_centric.py" in names
    assert len(EXAMPLES) >= 3
