"""Chaos suite: fault plans must not change what gets decided.

The robustness claim of PR 6 is observational: a confederation running
under a :class:`~repro.net.FaultPlan` whose faults are all *maskable*
(crashes within the replication budget, bounded drops/duplicates/delays
within the retry budget, participant restarts) must emit a decision
stream **byte-identical** to the fault-free baseline — faults may only
cost messages and simulated time, never outcomes.

Unmaskable faults must surface loudly, and the surface is pinned per
schedule mode: an unbounded black hole raises
:class:`~repro.errors.RetryExhaustedError` under the serial scheduler
and is wrapped in :class:`~repro.errors.SchedulerError` by the threaded
and async ones.

Since PR 10 the maskable matrix has an async column too: under
``schedule_mode="async"`` the same chaos plan must leave every
participant's decision stream byte-identical to the fault-free async
*and* threaded runs — pipelining the latency waits may only change
wall-clock time, never verdicts.
"""

from __future__ import annotations

import pytest

from repro.confed import Confederation, ConfederationConfig, HookBus
from repro.errors import RetryExhaustedError, SchedulerError
from repro.net import FaultPlan, HostCrash, MessageFault, ParticipantRestart
from repro.workload import WorkloadConfig

CHAOS_SEEDS = [11, 23, 47]

def maskable_plan(seed):
    """The maskable everything-at-once plan: a controller host crash
    that recovers mid-run, capped seeded drops on both directions of
    the store-txn protocol, duplicated allocator replies, slow data
    fetches, and a mid-run crash-restart of participant 3.  Every fault
    here is within the replication/retry budget, so it must be
    invisible in the decision stream — for *any* injection seed."""
    return FaultPlan(
        seed=seed,
        crashes=(HostCrash("host:2", at_epoch=5, recover_at_epoch=10),),
        messages=(
            MessageFault("txn_stored", "drop", probability=0.2, times=4),
            MessageFault("decision_recorded", "drop", probability=0.2, times=4),
            MessageFault("epoch_is", "duplicate", probability=0.5, times=3),
            MessageFault("txn_data", "delay", probability=0.1, times=5),
        ),
        restarts=(ParticipantRestart(participant=3, at_epoch=8),),
    )


def run_confederation(
    store,
    store_options,
    seed,
    faults=None,
    network_centric=False,
    schedule_mode="serial",
):
    """Replay the seeded evaluation schedule, recording every decision
    event (participant, recno, tid, verdict) in emission order."""
    config = ConfederationConfig(
        store=store,
        store_options=store_options,
        peers=(1, 2, 3, 4, 5),
        reconciliation_interval=3,
        rounds=3,
        final_reconcile=True,
        network_centric=network_centric,
        schedule_mode=schedule_mode,
        workload=WorkloadConfig(transaction_size=2, seed=seed),
        faults=faults,
    )
    log = []
    hooks = HookBus()
    hooks.on_decision(
        lambda **kw: log.append(
            (kw["participant"], kw["recno"], str(kw["tid"]), str(kw["decision"]))
        )
    )
    with Confederation(config, hooks=hooks) as confed:
        report = confed.run()
        snapshots = {
            p.id: p.instance.snapshot() for p in confed.participants
        }
    return log, snapshots, report


DHT_K2 = {"hosts": 5, "replication_factor": 2}


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_maskable_faults_leave_decisions_byte_identical(seed):
    """Workload seed and fault-plan seed both vary with the matrix."""
    baseline = run_confederation("central", {}, seed)
    fault_free = run_confederation("dht", DHT_K2, seed)
    chaotic = run_confederation(
        "dht", DHT_K2, seed, faults=maskable_plan(seed)
    )
    # Decision stream — order included — instances, and state ratio all
    # match the fault-free runs exactly.
    assert chaotic[0] == fault_free[0] == baseline[0]
    assert chaotic[1] == fault_free[1] == baseline[1]
    assert chaotic[2].state_ratio == baseline[2].state_ratio
    # ... and the faults really happened.
    summary = chaotic[2].faults
    assert summary.injected.get("crash") == 1
    assert summary.injected.get("drop", 0) >= 1
    assert summary.recoveries == 2  # host rejoin + participant restart
    assert summary.retries >= 1


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_maskable_faults_identical_in_store_computed_mode(seed):
    """The same chaos plan over Figure 3's store-computed column."""
    baseline = run_confederation("central", {}, seed)
    chaotic = run_confederation(
        "dht", DHT_K2, seed, faults=maskable_plan(seed),
        network_centric="store",
    )
    assert chaotic[0] == baseline[0]
    assert chaotic[1] == baseline[1]
    assert chaotic[2].state_ratio == baseline[2].state_ratio
    assert chaotic[2].faults.injected.get("crash") == 1


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_batched_delta_protocol_masks_wire_faults(seed):
    """Faults aimed squarely at the PR 8 wire-protocol kinds — the
    batched verdict round-trip (``nc_fetch_batch``/``nc_member_batch``),
    the coalesced ``nc_data``, and the ``nc_unchanged`` digest token —
    must stay invisible: decisions and final instances match the
    fault-free central baseline byte-for-byte.  The probability-1.0
    drops guarantee a dropped-then-retried batch on every seed, so a
    double-apply bug would split the streams and fail the assertion.

    The plan can sink up to 8 messages, and in the worst case every
    drop lands on the same root's request chain in consecutive
    attempts, so the retry budget is raised to keep the plan maskable
    by construction (8 drops < 9 attempts)."""
    plan = FaultPlan(
        seed=seed,
        messages=(
            MessageFault("nc_request", "drop", probability=0.3, times=2),
            MessageFault("nc_fetch_batch", "drop", probability=1.0, times=2),
            MessageFault("nc_data", "drop", probability=0.3, times=2),
            MessageFault("nc_data", "duplicate", probability=1.0, times=3),
            MessageFault(
                "nc_member_batch", "duplicate", probability=0.5, times=3
            ),
            MessageFault("nc_unchanged", "drop", probability=0.5, times=2),
            MessageFault("nc_unchanged", "duplicate", probability=0.5, times=2),
            MessageFault("nc_data", "delay", probability=0.2, times=4),
        ),
    )
    baseline = run_confederation("central", {}, seed)
    chaotic = run_confederation(
        "dht", dict(DHT_K2, max_retries=8), seed,
        faults=plan, network_centric="store"
    )
    assert chaotic[0] == baseline[0]
    assert chaotic[1] == baseline[1]
    assert chaotic[2].state_ratio == baseline[2].state_ratio
    summary = chaotic[2].faults
    assert summary.injected.get("drop", 0) >= 2
    assert summary.injected.get("duplicate", 0) >= 3
    assert summary.retries >= 1


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_durable_restart_recovers_from_disk(tmp_path, seed):
    """PR 9: a crash-restarted participant on the ``durable`` backend
    rebuilds its soft state from the database *file* — persisted
    decisions, persisted applied-set counters — and the decision stream
    still matches the fault-free central baseline byte-for-byte, with a
    page cache far smaller than the history."""
    baseline = run_confederation("central", {}, seed)
    plan = FaultPlan(
        seed=seed,
        restarts=(ParticipantRestart(participant=3, at_epoch=8),),
    )
    chaotic = run_confederation(
        "durable",
        {"path": str(tmp_path / f"chaos-{seed}.db"), "cache_size": 8},
        seed,
        faults=plan,
    )
    assert chaotic[0] == baseline[0]
    assert chaotic[1] == baseline[1]
    assert chaotic[2].state_ratio == baseline[2].state_ratio
    assert chaotic[2].faults.recoveries == 1


BLACK_HOLE = FaultPlan(
    seed=1,
    messages=(
        MessageFault("epoch_contents", "drop", probability=1.0, times=None),
    ),
)


def test_unmaskable_fault_raises_retry_exhausted_serial():
    with pytest.raises(RetryExhaustedError):
        run_confederation(
            "dht", {"hosts": 5, "max_retries": 2}, 11, faults=BLACK_HOLE
        )


def per_participant(log):
    """Group a decision log per participant, preserving stream order."""
    streams = {}
    for participant, *rest in log:
        streams.setdefault(participant, []).append(tuple(rest))
    return streams


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_maskable_faults_byte_identical_under_async_schedule(seed):
    """PR 10's async column of the chaos matrix: the maskable
    everything-at-once plan, replayed under the pipelined scheduler,
    must leave each participant's decision stream byte-identical to
    the fault-free async run — and, per the cross-schedule contract,
    to the fault-free threaded run as well.  The async global order is
    itself deterministic (decisions are emitted inside synchronous
    segments that the event loop interleaves in task order), so the
    fault-free comparison can be made on the full stream."""
    fault_free = run_confederation(
        "dht", DHT_K2, seed, schedule_mode="async"
    )
    chaotic = run_confederation(
        "dht", DHT_K2, seed, faults=maskable_plan(seed),
        schedule_mode="async",
    )
    threaded = run_confederation("dht", DHT_K2, seed, schedule_mode="threaded")
    assert chaotic[0] == fault_free[0]  # full stream, order included
    assert chaotic[1] == fault_free[1]
    assert chaotic[2].state_ratio == fault_free[2].state_ratio
    assert per_participant(chaotic[0]) == per_participant(threaded[0])
    assert chaotic[1] == threaded[1]
    # ... and the faults really happened under the event loop too.
    summary = chaotic[2].faults
    assert summary.injected.get("crash") == 1
    assert summary.recoveries == 2
    assert summary.retries >= 1


def test_unmaskable_fault_raises_scheduler_error_async():
    """The async scheduler pins the same failure surface as the
    threaded one: the first (lowest-id) per-participant reconcile
    failure is wrapped in SchedulerError before the publish barrier of
    the next round, with the transport error kept as the cause."""
    with pytest.raises(SchedulerError) as excinfo:
        run_confederation(
            "dht",
            {"hosts": 5, "max_retries": 2},
            11,
            faults=BLACK_HOLE,
            schedule_mode="async",
        )
    assert "reconcile phase failed" in str(excinfo.value)
    assert isinstance(excinfo.value.__cause__, RetryExhaustedError)


def test_unmaskable_fault_raises_scheduler_error_threaded():
    """The threaded scheduler wraps the per-participant reconcile
    failure; the retry exhaustion stays visible in the message."""
    with pytest.raises(SchedulerError) as excinfo:
        run_confederation(
            "dht",
            {"hosts": 5, "max_retries": 2},
            11,
            faults=BLACK_HOLE,
            schedule_mode="threaded",
        )
    assert "reconcile phase failed" in str(excinfo.value)


def test_fault_free_plan_changes_nothing():
    """An empty plan attached to the config is inert: same decisions,
    zero injections reported."""
    seed = CHAOS_SEEDS[0]
    plain = run_confederation("dht", DHT_K2, seed)
    empty = run_confederation("dht", DHT_K2, seed, faults=FaultPlan(seed=9))
    assert empty[0] == plain[0]
    assert empty[2].faults.total_injected == 0
    assert empty[2].faults.recoveries == 0
