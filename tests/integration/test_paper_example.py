"""End-to-end replay of the paper's Figures 1-2, over every store.

This is the repository's correctness reference: the four-epoch worked
example must produce exactly the instances and deferred sets printed in
Figure 2, no matter which update store carries the transactions.
"""

from __future__ import annotations

import pytest

from repro.cdss import CDSS
from repro.core import Resolution
from repro.model import Insert, Modify
from repro.policy import policy_from_priorities
from repro.store import CentralUpdateStore, DhtUpdateStore, MemoryUpdateStore


RAT_METAB = ("rat", "prot1", "cell-metab")
RAT_IMMUNE = ("rat", "prot1", "immune")
RAT_RESP = ("rat", "prot1", "cell-resp")
MOUSE = ("mouse", "prot2", "immune")


@pytest.fixture(params=["memory", "central", "dht"])
def cdss(request, schema):
    if request.param == "memory":
        yield CDSS(MemoryUpdateStore(schema))
    elif request.param == "central":
        with CentralUpdateStore(schema) as store:
            yield CDSS(store)
    else:
        yield CDSS(DhtUpdateStore(schema, hosts=3))


def build_figure1_topology(cdss):
    p1 = cdss.add_participant(1, policy_from_priorities([(2, 1), (3, 1)]))
    p2 = cdss.add_participant(2, policy_from_priorities([(1, 2), (3, 1)]))
    p3 = cdss.add_participant(3, policy_from_priorities([(2, 1)]))
    return p1, p2, p3


def run_figure2_epochs(p1, p2, p3):
    # Epoch 1: p3's insert and revision.
    p3.execute([Insert("F", RAT_METAB, 3)])
    p3.execute([Modify("F", RAT_METAB, RAT_IMMUNE, 3)])
    p3.publish_and_reconcile()
    # Epoch 2: p2's two inserts.
    p2.execute([Insert("F", MOUSE, 2)])
    p2.execute([Insert("F", RAT_RESP, 2)])
    epoch2 = p2.publish_and_reconcile()
    # Epoch 3: p3 reconciles again.
    epoch3 = p3.publish_and_reconcile()
    # Epoch 4: p1 reconciles.
    epoch4 = p1.publish_and_reconcile()
    return epoch2, epoch3, epoch4


class TestFigure2EndToEnd:
    def test_all_four_epochs(self, cdss):
        p1, p2, p3 = build_figure1_topology(cdss)
        result2, result3, result4 = run_figure2_epochs(p1, p2, p3)

        # Epoch 2: p2 rejects p3's rat chain, keeps its own state.
        assert sorted(map(str, result2.rejected)) == ["X3:0", "X3:1"]
        assert p2.instance.snapshot()["F"] == {
            ("mouse", "prot2"): MOUSE,
            ("rat", "prot1"): RAT_RESP,
        }

        # Epoch 3: p3 accepts the mouse tuple, rejects the rat tuple.
        assert sorted(map(str, result3.accepted)) == ["X2:0"]
        assert sorted(map(str, result3.rejected)) == ["X2:1"]
        assert p3.instance.snapshot()["F"] == {
            ("mouse", "prot2"): MOUSE,
            ("rat", "prot1"): RAT_IMMUNE,
        }

        # Epoch 4: p1 accepts mouse, defers the three rat transactions.
        assert sorted(map(str, result4.accepted)) == ["X2:0"]
        assert sorted(map(str, result4.deferred)) == ["X2:1", "X3:0", "X3:1"]
        assert p1.instance.snapshot()["F"] == {("mouse", "prot2"): MOUSE}

        # The figure's conflict group: three options at the rat key.
        [group] = p1.open_conflicts()
        assert group.key == ("F", ("rat", "prot1"))
        assert len(group.options) == 3

    def test_resolution_after_figure2(self, cdss):
        p1, p2, p3 = build_figure1_topology(cdss)
        run_figure2_epochs(p1, p2, p3)
        [group] = p1.open_conflicts()
        immune = next(
            i for i, opt in enumerate(group.options) if opt.effect == RAT_IMMUNE
        )
        p1.resolve([Resolution(group.group_id, immune)])
        assert p1.instance.snapshot()["F"] == {
            ("mouse", "prot2"): MOUSE,
            ("rat", "prot1"): RAT_IMMUNE,
        }
        assert p1.open_conflicts() == []
        # The resolution decisions reached the store: a follow-up
        # reconciliation delivers nothing stale.
        follow_up = p1.publish_and_reconcile()
        assert follow_up.accepted == []
        assert follow_up.deferred == []

    def test_state_ratio_reflects_figure2_divergence(self, cdss):
        p1, p2, p3 = build_figure1_topology(cdss)
        run_figure2_epochs(p1, p2, p3)
        # mouse key: all agree (p1, p2, p3 share it); rat key: p1 absent,
        # p2 has cell-resp, p3 has immune -> 3 states.
        ratio = cdss.state_ratio()
        assert ratio == pytest.approx((1 + 3) / 2)


class TestSection42Scenario:
    def test_revision_unblocks_conflicting_import(self, cdss):
        """Section 4.2's X3:2/X3:3: a revised-away insert must not block
        importing another peer's insert at the vacated key."""
        p1, p2, p3 = build_figure1_topology(cdss)
        p3.execute([Insert("F", ("mouse", "prot2", "cell-resp"), 3)])
        p3.execute(
            [
                Modify(
                    "F",
                    ("mouse", "prot2", "cell-resp"),
                    ("mouse", "prot3", "cell-resp"),
                    3,
                )
            ]
        )
        p3.publish()
        p2.execute([Insert("F", MOUSE, 2)])
        p2.publish_and_reconcile()
        result = p3.reconcile()
        assert len(result.accepted) == 1
        assert p3.instance.contains_row("F", MOUSE)
        assert p3.instance.contains_row("F", ("mouse", "prot3", "cell-resp"))
