"""Unit tests for materialised instances (memory and sqlite variants).

Both implementations must satisfy the identical contract, so every test in
this module runs against both via the ``instance`` parametrised fixture.
"""

from __future__ import annotations

import pytest

from repro.errors import ConstraintViolation
from repro.instance import MemoryInstance, SqliteInstance
from repro.model import Delete, Insert, Modify


RAT1 = ("rat", "prot1", "cell-metab")
RAT1_IMMUNE = ("rat", "prot1", "immune")
MOUSE2 = ("mouse", "prot2", "immune")


@pytest.fixture(params=["memory", "sqlite"])
def instance(request, schema):
    if request.param == "memory":
        yield MemoryInstance(schema)
    else:
        with SqliteInstance(schema) as inst:
            yield inst


@pytest.fixture(params=["memory", "sqlite"])
def xref_instance(request, xref_schema):
    if request.param == "memory":
        yield MemoryInstance(xref_schema)
    else:
        with SqliteInstance(xref_schema) as inst:
            yield inst


class TestBasicOperations:
    def test_starts_empty(self, instance):
        assert instance.count("F") == 0
        assert list(instance.rows("F")) == []

    def test_insert_and_get(self, instance):
        instance.apply(Insert("F", RAT1, 3))
        assert instance.get("F", ("rat", "prot1")) == RAT1
        assert instance.count("F") == 1
        assert instance.contains_row("F", RAT1)

    def test_get_missing_returns_none(self, instance):
        assert instance.get("F", ("no", "such")) is None

    def test_delete(self, instance):
        instance.apply(Insert("F", RAT1, 3))
        instance.apply(Delete("F", RAT1, 3))
        assert instance.get("F", ("rat", "prot1")) is None
        assert instance.count("F") == 0

    def test_modify_same_key(self, instance):
        instance.apply(Insert("F", RAT1, 3))
        instance.apply(Modify("F", RAT1, RAT1_IMMUNE, 3))
        assert instance.get("F", ("rat", "prot1")) == RAT1_IMMUNE

    def test_modify_key_changing(self, instance):
        instance.apply(Insert("F", RAT1, 3))
        instance.apply(Modify("F", RAT1, MOUSE2, 3))
        assert instance.get("F", ("rat", "prot1")) is None
        assert instance.get("F", ("mouse", "prot2")) == MOUSE2

    def test_snapshot(self, instance):
        instance.apply(Insert("F", RAT1, 3))
        instance.apply(Insert("F", MOUSE2, 2))
        snap = instance.snapshot()
        assert snap["F"] == {
            ("rat", "prot1"): RAT1,
            ("mouse", "prot2"): MOUSE2,
        }

    def test_all_keys(self, instance):
        instance.apply(Insert("F", RAT1, 3))
        assert instance.all_keys() == [("F", ("rat", "prot1"))]


class TestConstraints:
    def test_conflicting_insert_rejected(self, instance):
        instance.apply(Insert("F", RAT1, 3))
        with pytest.raises(ConstraintViolation):
            instance.apply(Insert("F", RAT1_IMMUNE, 2))

    def test_idempotent_reinsert_allowed(self, instance):
        instance.apply(Insert("F", RAT1, 3))
        instance.apply(Insert("F", RAT1, 2))
        assert instance.count("F") == 1

    def test_delete_of_absent_row_rejected(self, instance):
        with pytest.raises(ConstraintViolation):
            instance.apply(Delete("F", RAT1, 3))

    def test_delete_of_stale_row_rejected(self, instance):
        instance.apply(Insert("F", RAT1, 3))
        with pytest.raises(ConstraintViolation):
            instance.apply(Delete("F", RAT1_IMMUNE, 2))

    def test_modify_of_absent_row_rejected(self, instance):
        with pytest.raises(ConstraintViolation):
            instance.apply(Modify("F", RAT1, RAT1_IMMUNE, 3))

    def test_key_changing_modify_onto_occupied_key_rejected(self, instance):
        instance.apply(Insert("F", RAT1, 3))
        instance.apply(Insert("F", MOUSE2, 3))
        with pytest.raises(ConstraintViolation):
            instance.apply(Modify("F", RAT1, ("mouse", "prot2", "other"), 3))

    def test_foreign_key_enforced(self, xref_instance):
        with pytest.raises(ConstraintViolation):
            xref_instance.apply(Insert("Xref", ("rat", "prot1", "db", "a1"), 3))
        xref_instance.apply(Insert("F", RAT1, 3))
        xref_instance.apply(Insert("Xref", ("rat", "prot1", "db", "a1"), 3))
        assert xref_instance.count("Xref") == 1

    def test_foreign_key_satisfied_within_sequence(self, xref_instance):
        # The referenced F row arrives in the same sequence, earlier.
        xref_instance.apply_all(
            [
                Insert("F", RAT1, 3),
                Insert("Xref", ("rat", "prot1", "db", "a1"), 3),
            ]
        )
        assert xref_instance.count("Xref") == 1


class TestSequenceApplication:
    def test_can_apply_all_is_pure(self, instance):
        updates = [Insert("F", RAT1, 3), Modify("F", RAT1, RAT1_IMMUNE, 3)]
        assert instance.can_apply_all(updates)
        assert instance.count("F") == 0  # unchanged

    def test_can_apply_all_detects_late_failure(self, instance):
        updates = [Insert("F", RAT1, 3), Delete("F", RAT1_IMMUNE, 3)]
        assert not instance.can_apply_all(updates)

    def test_apply_all_is_atomic_in_effect(self, instance):
        updates = [Insert("F", RAT1, 3), Delete("F", RAT1_IMMUNE, 3)]
        with pytest.raises(ConstraintViolation):
            instance.apply_all(updates)
        assert instance.count("F") == 0  # nothing was applied

    def test_apply_all_sequence_with_internal_dependency(self, instance):
        instance.apply_all(
            [Insert("F", RAT1, 3), Modify("F", RAT1, RAT1_IMMUNE, 3)]
        )
        assert instance.get("F", ("rat", "prot1")) == RAT1_IMMUNE

    def test_can_apply_single(self, instance):
        assert instance.can_apply(Insert("F", RAT1, 3))
        assert not instance.can_apply(Delete("F", RAT1, 3))


class TestMemorySpecific:
    def test_copy_is_independent(self, schema):
        original = MemoryInstance(schema)
        original.apply(Insert("F", RAT1, 3))
        clone = original.copy()
        clone.apply(Delete("F", RAT1, 3))
        assert original.count("F") == 1
        assert clone.count("F") == 0
        assert original != clone

    def test_equality(self, schema):
        left = MemoryInstance(schema)
        right = MemoryInstance(schema)
        assert left == right
        left.apply(Insert("F", RAT1, 3))
        assert left != right


class TestSqliteSpecific:
    def test_values_round_trip(self, schema, tmp_path):
        path = str(tmp_path / "inst.db")
        with SqliteInstance(schema, path) as inst:
            inst.apply(Insert("F", ("rat", 42, ("nested", 1.5)), 3))
        with SqliteInstance(schema, path) as inst:
            assert inst.get("F", ("rat", 42)) == ("rat", 42, ("nested", 1.5))

    def test_invalid_relation_name_rejected(self):
        from repro.instance.sqlite_instance import _table_name

        with pytest.raises(ValueError):
            _table_name("evil; DROP TABLE")
