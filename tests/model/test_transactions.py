"""Unit tests for transaction ids and transaction construction."""

from __future__ import annotations

import pytest

from repro.errors import UpdateError
from repro.model import (
    Delete,
    Insert,
    Modify,
    Transaction,
    TransactionId,
    make_transaction,
)


RAT1 = ("rat", "prot1", "cell-metab")
RAT1_IMMUNE = ("rat", "prot1", "immune")
MOUSE2 = ("mouse", "prot2", "immune")


class TestTransactionId:
    def test_ordering_by_participant_then_sequence(self):
        assert TransactionId(1, 5) < TransactionId(2, 0)
        assert TransactionId(1, 0) < TransactionId(1, 1)

    def test_str_matches_paper_notation(self):
        assert str(TransactionId(3, 1)) == "X3:1"

    def test_hashable(self):
        ids = {TransactionId(1, 0), TransactionId(1, 0), TransactionId(1, 1)}
        assert len(ids) == 2


class TestTransaction:
    def test_construction_and_iteration(self):
        txn = make_transaction(3, 0, [Insert("F", RAT1, 3)])
        assert txn.origin == 3
        assert len(txn) == 1
        assert list(txn) == [Insert("F", RAT1, 3)]

    def test_empty_transaction_rejected(self):
        with pytest.raises(UpdateError):
            Transaction(TransactionId(3, 0), ())

    def test_origin_mismatch_rejected(self):
        with pytest.raises(UpdateError):
            make_transaction(3, 0, [Insert("F", RAT1, 2)])

    def test_keys_touched_deduplicates(self, schema):
        txn = make_transaction(
            3,
            0,
            [Insert("F", RAT1, 3), Modify("F", RAT1, RAT1_IMMUNE, 3)],
        )
        assert txn.keys_touched(schema) == (("F", ("rat", "prot1")),)

    def test_keys_touched_covers_all_updates(self, schema):
        txn = make_transaction(
            3,
            0,
            [Insert("F", RAT1, 3), Insert("F", MOUSE2, 3)],
        )
        assert set(txn.keys_touched(schema)) == {
            ("F", ("rat", "prot1")),
            ("F", ("mouse", "prot2")),
        }

    def test_str_form(self):
        txn = make_transaction(3, 1, [Delete("F", RAT1, 3)])
        assert str(txn).startswith("X3:1{")
