"""Unit tests for update operations and the paper's conflict predicate."""

from __future__ import annotations

import pytest

from repro.errors import UpdateError
from repro.model import Delete, Insert, Modify, updates_conflict


RAT1 = ("rat", "prot1", "cell-metab")
RAT1_IMMUNE = ("rat", "prot1", "immune")
RAT1_RESP = ("rat", "prot1", "cell-resp")
MOUSE2 = ("mouse", "prot2", "immune")


class TestUpdateBasics:
    def test_insert_written_and_read(self, schema):
        ins = Insert("F", RAT1, 3)
        assert ins.written_row() == RAT1
        assert ins.read_row() is None
        assert ins.keys_touched(schema) == (("F", ("rat", "prot1")),)

    def test_delete_written_and_read(self, schema):
        dele = Delete("F", RAT1, 3)
        assert dele.written_row() is None
        assert dele.read_row() == RAT1
        assert dele.keys_touched(schema) == (("F", ("rat", "prot1")),)

    def test_modify_written_and_read(self, schema):
        mod = Modify("F", RAT1, RAT1_IMMUNE, 3)
        assert mod.written_row() == RAT1_IMMUNE
        assert mod.read_row() == RAT1
        assert mod.keys_touched(schema) == (("F", ("rat", "prot1")),)

    def test_key_changing_modify_touches_both_keys(self, schema):
        mod = Modify("F", RAT1, MOUSE2, 3)
        assert set(mod.keys_touched(schema)) == {
            ("F", ("rat", "prot1")),
            ("F", ("mouse", "prot2")),
        }

    def test_identity_modify_rejected(self):
        with pytest.raises(UpdateError):
            Modify("F", RAT1, RAT1, 3)

    def test_str_forms(self):
        assert str(Insert("F", RAT1, 3)) == "+F(rat, prot1, cell-metab; 3)"
        assert str(Delete("F", RAT1, 3)) == "-F(rat, prot1, cell-metab; 3)"
        assert "->" in str(Modify("F", RAT1, RAT1_IMMUNE, 3))

    def test_updates_are_hashable_and_frozen(self):
        ins = Insert("F", RAT1, 3)
        assert hash(ins) == hash(Insert("F", RAT1, 3))
        with pytest.raises(AttributeError):  # frozen dataclass
            ins.origin = 4  # type: ignore[misc]


class TestConflictPredicate:
    """The three cases of Section 4, plus the documented generalisation."""

    def test_insert_insert_same_key_different_value(self, schema):
        left = Insert("F", RAT1_IMMUNE, 3)
        right = Insert("F", RAT1_RESP, 2)
        assert updates_conflict(schema, left, right)
        assert updates_conflict(schema, right, left)

    def test_insert_insert_identical_rows_do_not_conflict(self, schema):
        left = Insert("F", RAT1, 3)
        right = Insert("F", RAT1, 2)
        assert not updates_conflict(schema, left, right)

    def test_insert_insert_different_keys_do_not_conflict(self, schema):
        left = Insert("F", RAT1, 3)
        right = Insert("F", MOUSE2, 2)
        assert not updates_conflict(schema, left, right)

    def test_delete_vs_insert_same_key(self, schema):
        deletion = Delete("F", RAT1, 3)
        insertion = Insert("F", RAT1_IMMUNE, 2)
        assert updates_conflict(schema, deletion, insertion)
        assert updates_conflict(schema, insertion, deletion)

    def test_delete_vs_modify_same_source_key(self, schema):
        deletion = Delete("F", RAT1, 3)
        mod = Modify("F", RAT1, RAT1_IMMUNE, 2)
        assert updates_conflict(schema, deletion, mod)
        assert updates_conflict(schema, mod, deletion)

    def test_delete_vs_modify_other_key_no_conflict(self, schema):
        deletion = Delete("F", MOUSE2, 3)
        mod = Modify("F", RAT1, RAT1_IMMUNE, 2)
        assert not updates_conflict(schema, deletion, mod)

    def test_modify_modify_same_source_different_targets(self, schema):
        left = Modify("F", RAT1, RAT1_IMMUNE, 3)
        right = Modify("F", RAT1, RAT1_RESP, 2)
        assert updates_conflict(schema, left, right)
        assert updates_conflict(schema, right, left)

    def test_modify_modify_same_source_same_target_no_conflict(self, schema):
        left = Modify("F", RAT1, RAT1_IMMUNE, 3)
        right = Modify("F", RAT1, RAT1_IMMUNE, 2)
        assert not updates_conflict(schema, left, right)

    def test_identical_updates_do_not_conflict(self, schema):
        upd = Modify("F", RAT1, RAT1_IMMUNE, 3)
        assert not updates_conflict(schema, upd, upd)

    def test_different_relations_never_conflict(self, xref_schema):
        ins_f = Insert("F", RAT1, 3)
        ins_x = Insert("Xref", ("rat", "prot1", "db", "acc"), 2)
        assert not updates_conflict(xref_schema, ins_f, ins_x)

    def test_delete_delete_same_row_no_conflict(self, schema):
        left = Delete("F", RAT1, 3)
        right = Delete("F", RAT1, 2)
        assert not updates_conflict(schema, left, right)

    def test_delete_delete_same_key_different_rows_conflict(self, schema):
        left = Delete("F", RAT1, 3)
        right = Delete("F", RAT1_IMMUNE, 2)
        assert updates_conflict(schema, left, right)

    def test_write_write_collision_insert_vs_modify_target(self, schema):
        # A replacement moving a row *onto* a key conflicts with an insert
        # of a different row under that key (generalised case).
        insertion = Insert("F", RAT1_IMMUNE, 2)
        mod = Modify("F", MOUSE2, RAT1_RESP, 3)
        assert updates_conflict(schema, insertion, mod)
        assert updates_conflict(schema, mod, insertion)

    def test_write_write_same_row_via_different_ops_no_conflict(self, schema):
        insertion = Insert("F", RAT1_IMMUNE, 2)
        mod = Modify("F", MOUSE2, RAT1_IMMUNE, 3)
        assert not updates_conflict(schema, insertion, mod)

    def test_symmetry_exhaustive(self, schema):
        updates = [
            Insert("F", RAT1, 1),
            Insert("F", RAT1_IMMUNE, 2),
            Delete("F", RAT1, 3),
            Delete("F", RAT1_RESP, 1),
            Modify("F", RAT1, RAT1_IMMUNE, 2),
            Modify("F", RAT1, RAT1_RESP, 3),
            Modify("F", MOUSE2, RAT1_RESP, 1),
            Insert("F", MOUSE2, 2),
            Delete("F", MOUSE2, 3),
        ]
        for left in updates:
            for right in updates:
                assert updates_conflict(schema, left, right) == updates_conflict(
                    schema, right, left
                )
