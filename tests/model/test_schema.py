"""Unit tests for relation schemas, keys, and foreign keys."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.model import AttributeDef, ForeignKey, RelationSchema, Schema


class TestRelationSchema:
    def test_attribute_names_and_arity(self, function_relation):
        assert function_relation.attribute_names == (
            "organism",
            "protein",
            "function",
        )
        assert function_relation.arity == 3

    def test_key_projection(self, function_relation):
        row = ("rat", "prot1", "immune")
        assert function_relation.key_of(row) == ("rat", "prot1")

    def test_value_of(self, function_relation):
        row = ("rat", "prot1", "immune")
        assert function_relation.value_of(row, "function") == "immune"

    def test_position_of_unknown_attribute_raises(self, function_relation):
        with pytest.raises(SchemaError):
            function_relation.position_of("nonexistent")

    def test_string_attributes_are_promoted(self):
        rel = RelationSchema("R", ["a", "b"], key=("a",))
        assert rel.attributes[0] == AttributeDef("a")

    def test_wrong_arity_rejected(self, function_relation):
        with pytest.raises(SchemaError):
            function_relation.validate_row(("rat", "prot1"))

    def test_non_tuple_row_rejected(self, function_relation):
        with pytest.raises(SchemaError):
            function_relation.validate_row(["rat", "prot1", "immune"])

    def test_typed_attribute_enforced(self):
        rel = RelationSchema(
            "R", [AttributeDef("a", str), AttributeDef("n", int)], key=("a",)
        )
        rel.validate_row(("x", 1))
        with pytest.raises(SchemaError):
            rel.validate_row(("x", "not-an-int"))

    def test_untyped_attribute_accepts_anything(self):
        rel = RelationSchema("R", [AttributeDef("a")], key=("a",))
        rel.validate_row((object(),))

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("", ["a"], key=("a",))

    def test_no_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", [], key=("a",))

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ["a", "a"], key=("a",))

    def test_missing_key_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ["a"], key=())

    def test_key_over_unknown_attribute_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ["a"], key=("zzz",))

    def test_equality_and_hash(self):
        rel1 = RelationSchema("R", ["a", "b"], key=("a",))
        rel2 = RelationSchema("R", ["a", "b"], key=("a",))
        rel3 = RelationSchema("R", ["a", "b"], key=("b",))
        assert rel1 == rel2
        assert hash(rel1) == hash(rel2)
        assert rel1 != rel3


class TestSchema:
    def test_lookup(self, schema, function_relation):
        assert schema.relation("F") == function_relation
        assert "F" in schema
        assert "G" not in schema

    def test_unknown_relation_raises(self, schema):
        with pytest.raises(SchemaError):
            schema.relation("G")

    def test_duplicate_relations_rejected(self, function_relation):
        with pytest.raises(SchemaError):
            Schema([function_relation, function_relation])

    def test_iteration(self, xref_schema):
        assert sorted(rel.name for rel in xref_schema) == ["F", "Xref"]

    def test_relation_names(self, xref_schema):
        assert set(xref_schema.relation_names) == {"F", "Xref"}


class TestForeignKeys:
    def test_valid_foreign_key(self, xref_schema):
        fks = xref_schema.foreign_keys_from("Xref")
        assert len(fks) == 1
        assert fks[0].target_relation == "F"
        assert xref_schema.foreign_keys_into("F") == fks

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SchemaError):
            ForeignKey("A", ("x", "y"), "B", ("z",))

    def test_empty_foreign_key_rejected(self):
        with pytest.raises(SchemaError):
            ForeignKey("A", (), "B", ())

    def test_unknown_source_relation_rejected(self, function_relation):
        fk = ForeignKey("Nope", ("a", "b"), "F", ("organism", "protein"))
        with pytest.raises(SchemaError):
            Schema([function_relation], foreign_keys=[fk])

    def test_unknown_target_relation_rejected(self, function_relation):
        fk = ForeignKey("F", ("organism",), "Nope", ("x",))
        with pytest.raises(SchemaError):
            Schema([function_relation], foreign_keys=[fk])

    def test_fk_must_target_full_key(self, function_relation):
        other = RelationSchema("G", ["organism", "x"], key=("organism",))
        fk = ForeignKey("G", ("organism",), "F", ("organism",))
        with pytest.raises(SchemaError):
            Schema([function_relation, other], foreign_keys=[fk])

    def test_fk_over_unknown_attribute_rejected(self, function_relation):
        other = RelationSchema("G", ["organism"], key=("organism",))
        fk = ForeignKey("G", ("nope", "alsonope"), "F", ("organism", "protein"))
        with pytest.raises(SchemaError):
            Schema([function_relation, other], foreign_keys=[fk])
