"""Unit tests for update-sequence flattening (Section 4.2)."""

from __future__ import annotations

import pytest

from repro.errors import FlattenError
from repro.model import Delete, Insert, Modify, flatten, make_transaction
from repro.model.flatten import flatten_transactions, keys_read, keys_touched


RAT1 = ("rat", "prot1", "cell-metab")
RAT1_IMMUNE = ("rat", "prot1", "immune")
RAT1_RESP = ("rat", "prot1", "cell-resp")
MOUSE2 = ("mouse", "prot2", "cell-resp")
MOUSE3 = ("mouse", "prot3", "cell-resp")


class TestFlattenBasics:
    def test_empty_sequence(self, schema):
        assert flatten(schema, []) == []

    def test_single_insert_passthrough(self, schema):
        assert flatten(schema, [Insert("F", RAT1, 3)]) == [Insert("F", RAT1, 3)]

    def test_single_delete_passthrough(self, schema):
        assert flatten(schema, [Delete("F", RAT1, 3)]) == [Delete("F", RAT1, 3)]

    def test_single_modify_passthrough(self, schema):
        mod = Modify("F", RAT1, RAT1_IMMUNE, 3)
        assert flatten(schema, [mod]) == [mod]

    def test_insert_then_modify_becomes_insert(self, schema):
        # The paper's X3:0 followed by X3:1 (Figure 2, epoch 1).
        result = flatten(
            schema,
            [Insert("F", RAT1, 3), Modify("F", RAT1, RAT1_IMMUNE, 3)],
        )
        assert result == [Insert("F", RAT1_IMMUNE, 3)]

    def test_papers_key_changing_example(self, schema):
        # X3:2 then X3:3 from Section 4.2: +F(mouse, prot2, cell-resp) then
        # (mouse, prot2, cell-resp) -> (mouse, prot3, cell-resp) flattens
        # to the single insert of the final row.
        result = flatten(
            schema,
            [Insert("F", MOUSE2, 3), Modify("F", MOUSE2, MOUSE3, 3)],
        )
        assert result == [Insert("F", MOUSE3, 3)]

    def test_insert_then_delete_cancels(self, schema):
        result = flatten(schema, [Insert("F", RAT1, 3), Delete("F", RAT1, 3)])
        assert result == []

    def test_modify_chain_composes(self, schema):
        result = flatten(
            schema,
            [
                Modify("F", RAT1, RAT1_IMMUNE, 3),
                Modify("F", RAT1_IMMUNE, RAT1_RESP, 3),
            ],
        )
        assert result == [Modify("F", RAT1, RAT1_RESP, 3)]

    def test_modify_then_revert_cancels(self, schema):
        # Least interaction: a revised-away modification leaves no net
        # effect, so it cannot conflict with anyone.
        result = flatten(
            schema,
            [
                Modify("F", RAT1, RAT1_IMMUNE, 3),
                Modify("F", RAT1_IMMUNE, RAT1, 3),
            ],
        )
        assert result == []

    def test_modify_then_delete_becomes_delete_of_original(self, schema):
        result = flatten(
            schema,
            [Modify("F", RAT1, RAT1_IMMUNE, 3), Delete("F", RAT1_IMMUNE, 3)],
        )
        assert result == [Delete("F", RAT1, 3)]

    def test_delete_then_insert_merges_to_modify(self, schema):
        result = flatten(
            schema,
            [Delete("F", RAT1, 3), Insert("F", RAT1_IMMUNE, 3)],
        )
        assert result == [Modify("F", RAT1, RAT1_IMMUNE, 3)]

    def test_delete_then_reinsert_same_row_cancels(self, schema):
        result = flatten(schema, [Delete("F", RAT1, 3), Insert("F", RAT1, 3)])
        assert result == []

    def test_independent_updates_pass_through(self, schema):
        ins1 = Insert("F", RAT1, 3)
        ins2 = Insert("F", MOUSE2, 3)
        result = flatten(schema, [ins1, ins2])
        assert sorted(map(str, result)) == sorted(map(str, [ins1, ins2]))

    def test_key_changing_modify_then_back(self, schema):
        result = flatten(
            schema,
            [Modify("F", RAT1, MOUSE2, 3), Modify("F", MOUSE2, RAT1, 3)],
        )
        assert result == []

    def test_key_changing_chain_composes(self, schema):
        result = flatten(
            schema,
            [Modify("F", RAT1, MOUSE2, 3), Modify("F", MOUSE2, MOUSE3, 3)],
        )
        assert result == [Modify("F", RAT1, MOUSE3, 3)]

    def test_at_most_one_update_per_key(self, schema):
        sequence = [
            Insert("F", RAT1, 3),
            Modify("F", RAT1, RAT1_IMMUNE, 3),
            Delete("F", RAT1_IMMUNE, 3),
            Insert("F", RAT1_RESP, 3),
        ]
        result = flatten(schema, sequence)
        assert result == [Insert("F", RAT1_RESP, 3)]


class TestFlattenValidation:
    def test_delete_of_wrong_row_in_chain_rejected(self, schema):
        with pytest.raises(FlattenError):
            flatten(schema, [Insert("F", RAT1, 3), Delete("F", RAT1_IMMUNE, 3)])

    def test_double_insert_same_key_rejected(self, schema):
        with pytest.raises(FlattenError):
            flatten(schema, [Insert("F", RAT1, 3), Insert("F", RAT1_IMMUNE, 3)])

    def test_modify_source_mismatch_rejected(self, schema):
        with pytest.raises(FlattenError):
            flatten(
                schema,
                [Insert("F", RAT1, 3), Modify("F", RAT1_IMMUNE, RAT1_RESP, 3)],
            )


class TestFlattenTransactions:
    def test_across_transaction_boundaries(self, schema):
        txn0 = make_transaction(3, 0, [Insert("F", RAT1, 3)])
        txn1 = make_transaction(3, 1, [Modify("F", RAT1, RAT1_IMMUNE, 3)])
        assert flatten_transactions(schema, [txn0, txn1]) == [
            Insert("F", RAT1_IMMUNE, 3)
        ]


class TestReadTracking:
    def test_keys_read_reports_consumed_state(self, schema):
        reads = keys_read(schema, [Modify("F", RAT1, RAT1_IMMUNE, 3)])
        assert reads == {("F", ("rat", "prot1"))}

    def test_keys_read_survives_cancellation(self, schema):
        # A chain that restores the original row still read it.
        reads = keys_read(
            schema,
            [
                Modify("F", RAT1, RAT1_IMMUNE, 3),
                Modify("F", RAT1_IMMUNE, RAT1, 3),
            ],
        )
        assert reads == {("F", ("rat", "prot1"))}

    def test_pure_insert_reads_nothing(self, schema):
        assert keys_read(schema, [Insert("F", RAT1, 3)]) == set()

    def test_keys_touched_includes_intermediate_keys(self, schema):
        touched = keys_touched(
            schema,
            [Modify("F", RAT1, MOUSE2, 3), Modify("F", MOUSE2, MOUSE3, 3)],
        )
        assert touched == {
            ("F", ("rat", "prot1")),
            ("F", ("mouse", "prot2")),
            ("F", ("mouse", "prot3")),
        }


class TestFlattenOnce:
    """The single-pass FlattenResult view (one trace for all three sets)."""

    def test_matches_three_call_derivation(self, schema):
        from repro.model.flatten import flatten_once

        sequence = [
            Insert("F", RAT1, 3),
            Modify("F", RAT1, RAT1_IMMUNE, 3),
            Insert("F", MOUSE2, 3),
            Delete("F", MOUSE2, 3),
        ]
        result = flatten_once(schema, sequence)
        assert list(result.operations) == flatten(schema, sequence)
        assert result.keys_read == keys_read(schema, sequence)
        assert result.keys_touched == keys_touched(schema, sequence)

    def test_single_trace(self, schema):
        from repro.model.flatten import flatten_once, trace_runs

        sequence = [Insert("F", RAT1, 3), Modify("F", RAT1, RAT1_IMMUNE, 3)]
        before = trace_runs()
        flatten_once(schema, sequence)
        assert trace_runs() == before + 1

    def test_single_update_sequences_skip_the_trace(self, schema):
        from repro.model.flatten import flatten_once, trace_runs

        before = trace_runs()
        result = flatten_once(schema, [Insert("F", RAT1, 3)])
        empty = flatten_once(schema, [])
        assert trace_runs() == before  # fast path: no tracer at all
        assert list(result.operations) == [Insert("F", RAT1, 3)]
        assert result.keys_read == frozenset()
        assert result.keys_touched == {("F", ("rat", "prot1"))}
        assert empty.operations == ()

    def test_cyclic_rename_chain(self, schema):
        """Two rows swap keys through a temporary key: the net effect is
        the two replacements, and the temporary key still shows up in
        keys_touched (dirty-value deferral cares about it)."""
        from repro.model.flatten import flatten_once

        a = ("rat", "prot1", "fn-a")
        b = ("rat", "prot2", "fn-b")
        a_at_tmp = ("rat", "tmp", "fn-a")
        a_at_2 = ("rat", "prot2", "fn-a")
        b_at_1 = ("rat", "prot1", "fn-b")
        sequence = [
            Modify("F", a, a_at_tmp, 3),
            Modify("F", b, b_at_1, 3),
            Modify("F", a_at_tmp, a_at_2, 3),
        ]
        result = flatten_once(schema, sequence)
        assert set(result.operations) == {
            Modify("F", a, a_at_2, 3),
            Modify("F", b, b_at_1, 3),
        }
        assert ("F", ("rat", "tmp")) in result.keys_touched
        assert result.keys_read == {
            ("F", ("rat", "prot1")),
            ("F", ("rat", "prot2")),
        }

    def test_full_cycle_rename_flattens_to_nothing(self, schema):
        """A rename cycle that returns every row home nets out empty, but
        every key it passed through is still reported as touched."""
        from repro.model.flatten import flatten_once

        a = ("rat", "prot1", "fn-a")
        a_tmp = ("rat", "tmp", "fn-a")
        sequence = [
            Modify("F", a, a_tmp, 3),
            Modify("F", a_tmp, a, 3),
        ]
        result = flatten_once(schema, sequence)
        assert list(result.operations) == []
        assert result.keys_touched == {
            ("F", ("rat", "prot1")),
            ("F", ("rat", "tmp")),
        }
