"""The declarative fault plan and its deterministic injector (PR 6)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.net import (
    FaultInjector,
    FaultPlan,
    HostCrash,
    MessageFault,
    Network,
    Node,
    ParticipantRestart,
)


class SinkNode(Node):
    def __init__(self, name):
        super().__init__(name)
        self.received = []

    def handle(self, network, message):
        self.received.append(message)


def make_net(injector=None):
    net = Network(latency=0.001)
    a, b = SinkNode("a"), SinkNode("b")
    net.add_node(a)
    net.add_node(b)
    net.injector = injector
    return net, a, b


class TestFaultPlanRoundTrip:
    def plan(self):
        return FaultPlan(
            seed=7,
            crashes=(HostCrash("host:1", at_epoch=3, recover_at_epoch=6),),
            messages=(
                MessageFault("txn_data", "drop", probability=0.25, times=4),
                MessageFault("nc_data", "duplicate", probability=1.0),
                MessageFault(
                    "store_txn", "delay", probability=0.5, delay_factor=8.0
                ),
            ),
            restarts=(ParticipantRestart(participant=2, at_epoch=5),),
        )

    def test_exact_dict_round_trip(self):
        plan = self.plan()
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_json_detour_is_exact(self):
        plan = self.plan()
        data = json.loads(json.dumps(plan.to_dict()))
        assert FaultPlan.from_dict(data) == plan

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan.from_dict({"sede": 1})
        data = self.plan().to_dict()
        data["crashes"][0]["hots"] = data["crashes"][0].pop("host")
        with pytest.raises(ConfigError):
            FaultPlan.from_dict(data)

    def test_validation(self):
        with pytest.raises(ConfigError):
            FaultPlan(crashes=(HostCrash("h", at_epoch=0),)).validate()
        with pytest.raises(ConfigError):
            FaultPlan(
                crashes=(HostCrash("h", at_epoch=3, recover_at_epoch=3),)
            ).validate()
        with pytest.raises(ConfigError):
            FaultPlan(messages=(MessageFault("k", "explode"),)).validate()
        with pytest.raises(ConfigError):
            FaultPlan(
                messages=(MessageFault("k", probability=1.5),)
            ).validate()
        with pytest.raises(ConfigError):
            FaultPlan(messages=(MessageFault("k", times=0),)).validate()
        with pytest.raises(ConfigError):
            FaultPlan(
                restarts=(ParticipantRestart(1, at_epoch=0),)
            ).validate()
        assert FaultPlan().validate().is_empty()


class TestFaultInjector:
    def test_drop_skips_delivery_and_accounting(self):
        plan = FaultPlan(messages=(MessageFault("ping", "drop"),))
        net, a, b = make_net(FaultInjector(plan, latency=0.001))
        net.send("a", "b", "ping")
        net.send("a", "b", "other")
        assert net.run() == 2  # both attempts counted
        assert [m.kind for m in b.received] == ["other"]
        assert net.messages_delivered == 1
        assert net.kind_counts == {"other": 1}
        assert net.injector.counts == {"drop": 1}

    def test_duplicate_delivers_twice_and_is_not_reinjected(self):
        plan = FaultPlan(messages=(MessageFault("ping", "duplicate"),))
        net, a, b = make_net(FaultInjector(plan, latency=0.001))
        net.send("a", "b", "ping")
        net.run()
        assert [m.kind for m in b.received] == ["ping", "ping"]
        assert net.messages_delivered == 2
        assert net.injector.counts == {"duplicate": 1}

    def test_delay_charges_extra_latency_only(self):
        plan = FaultPlan(
            messages=(MessageFault("ping", "delay", delay_factor=10.0),)
        )
        net, a, b = make_net(FaultInjector(plan, latency=0.001))
        net.send("a", "b", "ping")
        net.run()
        assert len(b.received) == 1
        assert net.simulated_seconds == pytest.approx(0.001 + 0.010)

    def test_times_caps_total_injections(self):
        plan = FaultPlan(messages=(MessageFault("ping", "drop", times=2),))
        net, a, b = make_net(FaultInjector(plan, latency=0.001))
        for _ in range(5):
            net.send("a", "b", "ping")
        net.run()
        assert len(b.received) == 3
        assert net.injector.counts == {"drop": 2}

    def test_seeded_probability_is_deterministic(self):
        def drops(seed):
            plan = FaultPlan(
                seed=seed,
                messages=(MessageFault("ping", "drop", probability=0.5),),
            )
            net, a, b = make_net(FaultInjector(plan, latency=0.001))
            for i in range(32):
                net.send("a", "b", "ping", index=i)
            net.run()
            return [m.payload["index"] for m in b.received]

        assert drops(3) == drops(3)
        assert drops(3) != drops(4)

    def test_emit_callback_sees_each_injection(self):
        events = []
        plan = FaultPlan(messages=(MessageFault("ping", "drop"),))
        injector = FaultInjector(
            plan, latency=0.001, emit=lambda **kw: events.append(kw)
        )
        net, a, b = make_net(injector)
        net.send("a", "b", "ping")
        net.run()
        assert events == [
            {
                "action": "drop",
                "kind": "ping",
                "sender": "a",
                "recipient": "b",
            }
        ]
