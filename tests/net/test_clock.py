"""The latency-clock seam: blocking vs awaitable payment."""

from __future__ import annotations

import asyncio
import time

from repro.net.clock import (
    AsyncLatencyClock,
    BlockingLatencyClock,
    LatencyClock,
)
from repro.store.base import UpdateStore
from repro.store.memory import MemoryUpdateStore
from repro.workload import curated_schema


class TestBlockingClock:
    def test_is_the_latency_clock_default(self):
        store = MemoryUpdateStore(curated_schema())
        assert isinstance(store.clock, BlockingLatencyClock)
        assert isinstance(store.clock, LatencyClock)

    def test_pay_blocks_for_the_requested_seconds(self):
        clock = BlockingLatencyClock()
        started = time.perf_counter()
        clock.pay(0.02)
        assert time.perf_counter() - started >= 0.015

    def test_pay_latency_routes_through_the_clock(self):
        class CountingClock(LatencyClock):
            """Records payments instead of waiting."""

            def __init__(self):
                self.paid = []

            def pay(self, seconds):
                self.paid.append(seconds)

        store = MemoryUpdateStore(curated_schema(), real_latency=True)
        store.clock = clock = CountingClock()
        store.pay_latency(0.25)
        store.pay_latency(0.0)  # gated: nothing to pay
        assert clock.paid == [0.25]

    def test_no_payment_without_real_latency(self):
        class ExplodingClock(LatencyClock):
            """Fails the test if any payment reaches it."""

            def pay(self, seconds):
                raise AssertionError("paid latency on a simulated-only store")

        store = MemoryUpdateStore(curated_schema())  # real_latency=False
        store.clock = ExplodingClock()
        store.pay_latency(0.25)  # charged, never paid

    def test_every_update_store_carries_a_clock(self):
        assert isinstance(UpdateStore.pay_latency, object)
        store = MemoryUpdateStore(curated_schema())
        assert hasattr(store, "clock")


class TestAsyncClock:
    def test_pay_accrues_per_task_and_drain_awaits(self):
        clock = AsyncLatencyClock()

        async def worker(seconds):
            clock.pay(seconds)
            clock.pay(seconds)  # payments within a segment coalesce
            assert clock.outstanding >= 2 * seconds
            await clock.drain()

        async def main():
            started = time.perf_counter()
            await asyncio.gather(worker(0.02), worker(0.02))
            return time.perf_counter() - started

        elapsed = asyncio.run(main())
        # Each task owes 0.04s; the two waits overlap on the loop.
        assert elapsed >= 0.03
        assert elapsed < 0.1
        assert clock.outstanding == 0.0
        assert clock.total_paid >= 0.08

    def test_debts_are_isolated_per_task(self):
        clock = AsyncLatencyClock()
        seen = {}

        async def worker(name, seconds):
            clock.pay(seconds)
            before = clock._debts[asyncio.current_task()]
            await clock.drain()
            seen[name] = before

        asyncio.run(
            asyncio.wait_for(
                _gather(worker("a", 0.001), worker("b", 0.002)), timeout=5
            )
        )
        assert seen == {"a": 0.001, "b": 0.002}

    def test_drain_without_debt_is_a_no_op(self):
        clock = AsyncLatencyClock()

        async def main():
            await clock.drain()

        asyncio.run(main())
        assert clock.total_paid == 0.0

    def test_pay_outside_a_task_degrades_to_blocking(self):
        # A store used standalone while the async clock happens to be
        # installed must still pay — latency is never silently dropped.
        clock = AsyncLatencyClock()
        started = time.perf_counter()
        clock.pay(0.02)
        assert time.perf_counter() - started >= 0.015
        assert clock.outstanding == 0.0


async def _gather(*coroutines):
    """``asyncio.gather`` as a coroutine (for ``wait_for``)."""
    return await asyncio.gather(*coroutines)
