"""Tests for the simulated network and the consistent-hashing ring."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.net import HashRing, Message, Network, Node


class EchoNode(Node):
    """Replies to every 'ping' with a 'pong'."""

    def __init__(self, name):
        super().__init__(name)
        self.received = []

    def handle(self, network, message):
        self.received.append(message)
        if message.kind == "ping":
            network.send(self.name, message.sender, "pong")


class TestNetwork:
    def test_round_trip_counts_two_messages(self):
        net = Network(latency=0.001)
        a, b = EchoNode("a"), EchoNode("b")
        net.add_node(a)
        net.add_node(b)
        net.send("a", "b", "ping")
        delivered = net.run()
        assert delivered == 2
        assert net.messages_delivered == 2
        assert net.simulated_seconds == pytest.approx(0.002)
        assert [m.kind for m in a.received] == ["pong"]

    def test_bytes_accounted_per_message(self):
        from repro.net.simnet import DEFAULT_FRAGMENT_BYTES

        net = Network(latency=0.001)
        a, b = EchoNode("a"), EchoNode("b")
        net.add_node(a)
        net.add_node(b)
        # Explicit size wins; unspecified sizes default per fragment —
        # the echo reply is 1 fragment, the 3-fragment probe is charged
        # at three defaults.
        net.send("a", "b", "ping", size_bytes=1000)
        net.run()
        net.send("a", "b", "probe", fragments=3)
        net.run()
        assert net.bytes_delivered == (
            1000
            + DEFAULT_FRAGMENT_BYTES  # pong reply to the ping
            + 3 * DEFAULT_FRAGMENT_BYTES  # unanswered probe
        )
        # Per-kind byte accounting mirrors the totals, split by kind.
        assert net.kind_bytes == {
            "ping": 1000,
            "pong": DEFAULT_FRAGMENT_BYTES,
            "probe": 3 * DEFAULT_FRAGMENT_BYTES,
        }
        assert sum(net.kind_bytes.values()) == net.bytes_delivered

    def test_deprecated_underscore_sizing_aliases(self):
        net = Network(latency=0.001)
        a, b = EchoNode("a"), EchoNode("b")
        net.add_node(a)
        net.add_node(b)
        with pytest.warns(DeprecationWarning):
            net.send("a", "b", "probe", _fragments=2)
        with pytest.warns(DeprecationWarning):
            net.send("a", "b", "probe", _size_bytes=640)
        net.run()
        # Aliases feed the real sizing fields, not the payload.
        assert net.messages_delivered == 3  # 2 fragments + 1
        assert net.bytes_delivered == 2 * 256 + 640
        assert all("_fragments" not in m.payload for m in b.received)
        assert all("_size_bytes" not in m.payload for m in b.received)

    def test_duplicate_node_rejected(self):
        net = Network()
        net.add_node(EchoNode("a"))
        with pytest.raises(NetworkError):
            net.add_node(EchoNode("a"))

    def test_unknown_recipient_raises(self):
        net = Network()
        net.add_node(EchoNode("a"))
        net.send("a", "nobody", "ping")
        with pytest.raises(NetworkError):
            net.run()

    def test_failed_node_raises_by_default(self):
        net = Network()
        net.add_node(EchoNode("a"))
        net.add_node(EchoNode("b"))
        net.fail_node("b")
        net.send("a", "b", "ping")
        with pytest.raises(NetworkError):
            net.run()

    def test_failed_node_drops_when_configured(self):
        net = Network(drop_to_failed=True)
        a, b = EchoNode("a"), EchoNode("b")
        net.add_node(a)
        net.add_node(b)
        net.fail_node("b")
        net.send("a", "b", "ping")
        assert net.run() == 1
        assert b.received == []

    def test_dropped_messages_are_not_accounted(self):
        # A drop to a failed node must leave every counter untouched:
        # the clock, the message counter, the byte total, and the kind
        # counts only reflect deliveries that happened.
        net = Network(latency=0.001, drop_to_failed=True)
        a, b = EchoNode("a"), EchoNode("b")
        net.add_node(a)
        net.add_node(b)
        net.fail_node("b")
        net.send("a", "b", "ping", fragments=3, size_bytes=999)
        net.run()
        assert net.messages_delivered == 0
        assert net.bytes_delivered == 0
        assert net.simulated_seconds == 0.0
        assert net.kind_counts == {}
        assert net.kind_bytes == {}
        # Recovery restores normal accounting.
        net.recover_node("b")
        net.send("a", "b", "ping")
        net.run()
        assert net.messages_delivered == 2  # ping + pong
        assert net.simulated_seconds == pytest.approx(0.002)
        assert net.kind_counts == {"ping": 1, "pong": 1}

    def test_recovery(self):
        net = Network(drop_to_failed=True)
        a, b = EchoNode("a"), EchoNode("b")
        net.add_node(a)
        net.add_node(b)
        net.fail_node("b")
        assert net.is_failed("b")
        net.recover_node("b")
        net.send("a", "b", "ping")
        net.run()
        assert len(b.received) == 1

    def test_message_budget_guards_loops(self):
        class LoopNode(Node):
            def handle(self, network, message):
                network.send(self.name, self.name, "loop")

        net = Network()
        net.add_node(LoopNode("l"))
        net.send("l", "l", "loop")
        with pytest.raises(NetworkError):
            net.run(max_messages=100)

    def test_message_str(self):
        assert str(Message("a", "b", "ping")) == "a -> b: ping"


class TestHashRing:
    def test_deterministic_ownership(self):
        ring = HashRing(["n0", "n1", "n2"])
        assert ring.owner("some-key") == ring.owner("some-key")
        assert ring.owner("some-key") in {"n0", "n1", "n2"}

    def test_spread_over_nodes(self):
        ring = HashRing([f"n{i}" for i in range(8)])
        owners = {ring.owner(f"key-{i}") for i in range(200)}
        assert len(owners) >= 4  # hashing spreads keys around

    def test_single_node_owns_everything(self):
        ring = HashRing(["solo"])
        assert ring.owner("anything") == "solo"

    def test_empty_ring_rejected(self):
        with pytest.raises(NetworkError):
            HashRing([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(NetworkError):
            HashRing(["a", "a"])

    def test_owner_excluding_failed(self):
        ring = HashRing(["n0", "n1", "n2"])
        primary = ring.owner("key")
        fallback = ring.owner_excluding("key", {primary})
        assert fallback != primary
        assert fallback in {"n0", "n1", "n2"}

    def test_owner_excluding_all_raises(self):
        ring = HashRing(["n0"])
        with pytest.raises(NetworkError):
            ring.owner_excluding("key", {"n0"})

    def test_nodes_in_ring_order(self):
        ring = HashRing(["n0", "n1", "n2"])
        assert set(ring.nodes()) == {"n0", "n1", "n2"}
        assert len(ring) == 3

    def test_successors_start_at_owner_and_are_distinct(self):
        ring = HashRing([f"n{i}" for i in range(5)])
        succ = ring.successors("key", 3)
        assert succ[0] == ring.owner("key")
        assert len(succ) == len(set(succ)) == 3

    def test_successors_clamped_to_live_ring(self):
        ring = HashRing(["n0", "n1", "n2"])
        assert len(ring.successors("key", 10)) == 3
        succ = ring.successors("key", 2, excluded={ring.owner("key")})
        assert ring.owner("key") not in succ
        assert succ[0] == ring.owner_excluding("key", {ring.owner("key")})

    def test_successors_all_excluded_raises(self):
        ring = HashRing(["n0"])
        with pytest.raises(NetworkError):
            ring.successors("key", 1, excluded={"n0"})
