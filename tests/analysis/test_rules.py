"""The analyzer's own test suite: every rule fires, the tree is clean.

Three layers of proof:

* **fixtures** — one seeded-violation file per rule code under
  ``fixtures/`` (non-``.py`` extensions so directory walks never see
  them); each must produce findings of exactly its own code;
* **mechanics** — scoping, suppression comments, fixture impersonation,
  ``--select`` validation, RPR000 degradation on bad files;
* **self-check** — the real tree (``src tests benchmarks examples``)
  analyzes clean, pinning every violation fix this analyzer forced.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    ModuleContext,
    RULES_BY_CODE,
    analyze_source,
    collect_files,
    default_rules,
    run_analysis,
)
from repro.analysis.__main__ import main
from repro.analysis.report import render_json, render_text

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"

#: rule code → (fixture file, expected number of findings)
FIXTURE_BY_CODE = {
    "RPR001": ("rpr001_store_type_check.txt", 1),
    "RPR002": ("rpr002_unseeded_random.txt", 2),
    "RPR003": ("rpr003_wall_clock.txt", 1),
    "RPR004": ("rpr004_direct_store_call.txt", 1),
    "RPR005": ("rpr005_hook_event.txt", 2),
    "RPR006": ("rpr006_memo_mutation.txt", 2),
    "RPR007": ("rpr007_set_iteration.txt", 2),
    "RPR008": ("rpr008_dict_parity.txt", 1),
    "RPR009": ("rpr009_kinds_registry.txt", 2),
    "RPR010": ("rpr010_blocking_sleep.txt", 2),
}


def test_fixture_table_covers_every_shipped_rule():
    assert set(FIXTURE_BY_CODE) == set(RULES_BY_CODE)


@pytest.mark.parametrize("code", sorted(FIXTURE_BY_CODE))
def test_rule_fires_on_its_fixture(code):
    filename, expected_count = FIXTURE_BY_CODE[code]
    findings = run_analysis([str(FIXTURES / filename)])
    assert len(findings) == expected_count, [f.render() for f in findings]
    # Exactly this rule and no other: fixtures are single-violation
    # specimens, so cross-firing means a rule lost precision.
    assert {f.code for f in findings} == {code}
    for finding in findings:
        # Findings point at the file on disk, not the impersonated path.
        assert finding.path == str(FIXTURES / filename)
        assert finding.line >= 1
        assert finding.column >= 1
        assert finding.message


def test_fixtures_are_invisible_to_directory_walks():
    collected = collect_files([str(FIXTURES)])
    assert collected == []  # non-.py extensions: the self-check never scans them


# ----------------------------------------------------------------------
# Engine mechanics


def test_module_context_scoping():
    context = ModuleContext.from_path("src/repro/store/dht.py")
    assert context.realm == "src"
    assert context.subpackage == "store"
    top_level = ModuleContext.from_path("src/repro/errors.py")
    assert top_level.realm == "src"
    assert top_level.subpackage is None
    tests = ModuleContext.from_path("tests/core/test_engine.py")
    assert tests.realm == "tests"
    assert tests.subpackage is None
    other = ModuleContext.from_path("setup.py")
    assert other.realm == "other"


def test_fixture_header_overrides_scoping_but_not_reported_path():
    source = (FIXTURES / "rpr003_wall_clock.txt").read_text()
    report = analyze_source(source, "whatever/on/disk.txt", default_rules())
    # Scoped as core/ (the impersonated module) …
    assert report.context.subpackage == "core"
    # … but findings carry the on-disk path.
    assert [f.path for f in report.findings] == ["whatever/on/disk.txt"]


def test_suppression_comment_on_line_and_line_above():
    base = "# repro: fixture-module src/repro/core/engine.py\nimport time\n"
    inline = base + "t = time.time()  # repro: allow[RPR003]\n"
    above = base + "# repro: allow[RPR003]\nt = time.time()\n"
    unrelated = base + "t = time.time()  # repro: allow[RPR007]\n"
    rules = default_rules()
    assert analyze_source(inline, "f.py", rules).findings == []
    assert analyze_source(inline, "f.py", rules).suppressed == 1
    assert analyze_source(above, "f.py", rules).findings == []
    # A suppression is per-code: allowing a different rule hides nothing.
    assert len(analyze_source(unrelated, "f.py", rules).findings) == 1


def test_select_narrows_and_rejects_unknown_codes():
    fixture = str(FIXTURES / FIXTURE_BY_CODE["RPR002"][0])
    assert run_analysis([fixture], select=["RPR003"]) == []
    assert len(run_analysis([fixture], select=["rpr002"])) == 2
    with pytest.raises(ValueError, match="RPR999"):
        run_analysis([fixture], select=["RPR999"])


def test_unparseable_file_degrades_to_rpr000(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    findings = run_analysis([str(bad)])
    assert [f.code for f in findings] == ["RPR000"]
    assert "syntax error" in findings[0].message


# ----------------------------------------------------------------------
# Reporters and CLI contract


def test_text_and_json_reporters():
    findings = run_analysis([str(FIXTURES / FIXTURE_BY_CODE["RPR006"][0])])
    text = render_text(findings)
    assert "RPR006" in text
    assert "2 finding(s)" in text
    payload = json.loads(render_json(findings))
    assert payload["total"] == 2
    assert payload["counts"] == {"RPR006": 2}
    assert {f["code"] for f in payload["findings"]} == {"RPR006"}
    assert render_text([]) == "0 findings"


def test_cli_exit_codes(capsys):
    clean = main([str(REPO_ROOT / "src" / "repro" / "errors.py")])
    assert clean == 0
    dirty = main([str(FIXTURES / FIXTURE_BY_CODE["RPR001"][0])])
    assert dirty == 1
    assert main([]) == 2  # no paths
    assert main(["--select", "RPR999", "x.py"]) == 2  # unknown code
    capsys.readouterr()


def test_cli_json_format(capsys):
    code = main(
        [str(FIXTURES / FIXTURE_BY_CODE["RPR004"][0]), "--format", "json"]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["total"] == 1
    assert payload["findings"][0]["code"] == "RPR004"


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in sorted(RULES_BY_CODE):
        assert code in out


# ----------------------------------------------------------------------
# The self-check: the real tree is clean


def test_real_tree_is_clean():
    """The CI gate's contract, pinned as a test.

    This locks in every fix the analyzer forced (seeded RNG fallbacks,
    sorted set unions in ``_fully_decided``, the ``_store_call`` routing
    of ``Participant.rebuild``): reintroducing any of them fails here
    before it can perturb a decision stream.
    """
    roots = [
        str(REPO_ROOT / "src"),
        str(REPO_ROOT / "tests"),
        str(REPO_ROOT / "benchmarks"),
        str(REPO_ROOT / "examples"),
    ]
    findings = run_analysis(roots)
    assert findings == [], "\n" + "\n".join(f.render() for f in findings)
