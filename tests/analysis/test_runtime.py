"""The dynamic checker half: runtime lock-discipline instrumentation.

Three layers again:

* **unit** — the owner-tracking lock shim and the guarded container
  proxies raise :class:`LockDisciplineError` deterministically on any
  unlocked access, and instrumentation is fully reversible;
* **detection** — a deliberately introduced lock bypass is caught: raw
  under the serial scheduler, wrapped in
  :class:`~repro.errors.SchedulerError` when a threaded worker trips it;
* **transparency** — a fully instrumented confederation run (including
  the threaded *and async* chaos matrices with a maskable fault plan)
  completes clean with a decision stream byte-identical to the
  uninstrumented run.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis.runtime import (
    InstrumentedRLock,
    LockDisciplineError,
    instrument_store,
    lock_discipline,
)
from repro.cdss.participant import Participant
from repro.confed import Confederation, ConfederationConfig, HookBus
from repro.errors import SchedulerError
from repro.net import FaultPlan, HostCrash, MessageFault, ParticipantRestart
from repro.store.memory import MemoryUpdateStore
from repro.workload import WorkloadConfig

# ----------------------------------------------------------------------
# Unit: the lock shim and the proxies


def test_instrumented_lock_tracks_owner_and_reentrancy():
    lock = InstrumentedRLock(threading.RLock())
    assert not lock.held()
    with lock:
        assert lock.held()
        with lock:  # reentrant: depth bookkeeping survives nesting
            assert lock.held()
        assert lock.held()
    assert not lock.held()


def test_instrumented_lock_ownership_is_per_thread():
    lock = InstrumentedRLock(threading.RLock())
    observed = []
    with lock:
        worker = threading.Thread(target=lambda: observed.append(lock.held()))
        worker.start()
        worker.join()
    assert observed == [False]  # another thread's hold is not ours


def test_guarded_containers_raise_without_the_lock(schema):
    store = MemoryUpdateStore(schema)
    handle = instrument_store(store)
    try:
        # Every plain container on the store got wrapped.
        assert "_log" in handle.wrapped
        assert "_participants" in handle.wrapped
        with pytest.raises(LockDisciplineError, match="_log"):
            len(store._log)
        with pytest.raises(LockDisciplineError):
            store._participants[1] = None
        with pytest.raises(LockDisciplineError):
            list(store._by_epoch)
        # The same operations are fine with the lock held.
        with store.lock:
            assert len(store._log) == 0
            assert list(store._by_epoch) == []
    finally:
        handle.restore()


def test_instrumentation_is_reversible(schema):
    store = MemoryUpdateStore(schema)
    original_lock = store.lock
    with lock_discipline(store) as handle:
        assert store.lock is handle.lock
        assert type(store._log) is not dict
    # After the block: raw containers and the original lock are back.
    assert store.lock is original_lock
    assert type(store._log) is dict
    len(store._log)  # no proxy, no assertion


def test_skip_leaves_named_attributes_unwrapped(schema):
    store = MemoryUpdateStore(schema)
    with lock_discipline(store, skip=("_log",)) as handle:
        assert "_log" not in handle.wrapped
        len(store._log)  # untouched: plain dict


# ----------------------------------------------------------------------
# Confederation runs (the chaos-suite harness, instrumented)

CHAOS_SEED = 23
DHT_K2 = {"hosts": 5, "replication_factor": 2}


def maskable_plan(seed):
    """The chaos suite's maskable everything-at-once plan."""
    return FaultPlan(
        seed=seed,
        crashes=(HostCrash("host:2", at_epoch=5, recover_at_epoch=10),),
        messages=(
            MessageFault("txn_stored", "drop", probability=0.2, times=4),
            MessageFault("epoch_is", "duplicate", probability=0.5, times=3),
        ),
        restarts=(ParticipantRestart(participant=3, at_epoch=8),),
    )


def run_confederation(
    store,
    store_options,
    seed,
    instrument=False,
    faults=None,
    schedule_mode="serial",
):
    """The chaos suite's seeded schedule, optionally under the proxies."""
    config = ConfederationConfig(
        store=store,
        store_options=store_options,
        peers=(1, 2, 3, 4, 5),
        reconciliation_interval=3,
        rounds=3,
        final_reconcile=True,
        schedule_mode=schedule_mode,
        workload=WorkloadConfig(transaction_size=2, seed=seed),
        faults=faults,
    )
    log = []
    hooks = HookBus()
    hooks.on_decision(
        lambda **kw: log.append(
            (kw["participant"], kw["recno"], str(kw["tid"]), str(kw["decision"]))
        )
    )
    with Confederation(config, hooks=hooks) as confed:
        if instrument:
            with lock_discipline(confed.store) as handle:
                assert handle.wrapped  # something is actually guarded
                report = confed.run()
        else:
            report = confed.run()
        snapshots = {p.id: p.instance.snapshot() for p in confed.participants}
    return log, snapshots, report


def test_instrumented_serial_run_is_clean_and_identical():
    """Every store access in a full serial run holds the lock, and the
    proxies perturb nothing: decisions and instances are byte-identical
    to the uninstrumented run."""
    plain = run_confederation("memory", {}, CHAOS_SEED)
    guarded = run_confederation("memory", {}, CHAOS_SEED, instrument=True)
    assert guarded[0] == plain[0]
    assert guarded[1] == plain[1]
    assert guarded[2].state_ratio == plain[2].state_ratio


def per_participant(log):
    """Decision events grouped by participant, emission order kept."""
    streams = {}
    for event in log:
        streams.setdefault(event[0], []).append(event)
    return streams


def test_instrumented_threaded_chaos_run_is_clean_and_identical():
    """The hard case: the threaded scheduler's concurrent reconcile
    phase over the replicated DHT with a maskable fault plan (host
    crash + recovery, seeded drops/duplicates, a participant restart),
    every store touch owner-checked.

    The threaded mode's determinism contract is per participant — each
    participant's decision subsequence and final instance are exactly
    reproducible; the *global* interleaving of concurrent workers'
    emissions is not pinned even between two uninstrumented runs — so
    that is what instrumentation must leave byte-identical."""
    plain = run_confederation(
        "dht",
        DHT_K2,
        CHAOS_SEED,
        faults=maskable_plan(CHAOS_SEED),
        schedule_mode="threaded",
    )
    guarded = run_confederation(
        "dht",
        DHT_K2,
        CHAOS_SEED,
        instrument=True,
        faults=maskable_plan(CHAOS_SEED),
        schedule_mode="threaded",
    )
    assert per_participant(guarded[0]) == per_participant(plain[0])
    assert guarded[1] == plain[1]
    assert guarded[2].faults.injected.get("crash") == 1
    assert guarded[2].faults.recoveries == 2


def test_instrumented_async_chaos_run_is_clean_and_identical():
    """PR 10's column: the pipelined scheduler's reconcile phase over
    the replicated DHT with the maskable fault plan, every store touch
    owner-checked.  All tasks share one thread, so the instrumented
    lock's per-thread ownership still discriminates correctly: held
    inside ``_store_phase``, not held across awaits.  Per-participant
    streams must match the uninstrumented async run *and* the threaded
    run byte-for-byte."""
    plain = run_confederation(
        "dht",
        DHT_K2,
        CHAOS_SEED,
        faults=maskable_plan(CHAOS_SEED),
        schedule_mode="async",
    )
    guarded = run_confederation(
        "dht",
        DHT_K2,
        CHAOS_SEED,
        instrument=True,
        faults=maskable_plan(CHAOS_SEED),
        schedule_mode="async",
    )
    threaded = run_confederation(
        "dht",
        DHT_K2,
        CHAOS_SEED,
        faults=maskable_plan(CHAOS_SEED),
        schedule_mode="threaded",
    )
    assert guarded[0] == plain[0]  # async global order is deterministic
    assert guarded[1] == plain[1]
    assert per_participant(guarded[0]) == per_participant(threaded[0])
    assert guarded[2].faults.injected.get("crash") == 1
    assert guarded[2].faults.recoveries == 2


# ----------------------------------------------------------------------
# Detection: deliberate bypasses are caught


def test_store_call_bypass_is_caught_serial(monkeypatch):
    """Remove the lock from ``_store_call`` — the transport contract's
    single chokepoint — and the very first store access raises."""

    def lockless_store_call(self, method, *args):
        from repro.store.base import PerfCounters

        result = method(*args)  # no lock: the exact bug RPR004 guards
        return result, PerfCounters(), 0.0

    with pytest.raises(LockDisciplineError, match="store lock is not held"):
        monkeypatch.setattr(Participant, "_store_call", lockless_store_call)
        run_confederation("memory", {}, CHAOS_SEED, instrument=True)


def test_unsynchronized_peek_is_caught_in_threaded_worker(monkeypatch):
    """A reconcile-phase worker peeking at store internals without the
    lock trips the proxy; the scheduler wraps it per its error contract
    with the root cause preserved."""
    original = Participant.reconcile

    def leaky_reconcile(self):
        len(self.store._log)  # unsynchronized cross-thread peek
        return original(self)

    monkeypatch.setattr(Participant, "reconcile", leaky_reconcile)
    # Without instrumentation the peek is invisible — the static rules
    # cannot see it either (dynamic attribute path, non-cdss caller).
    run_confederation("memory", {}, CHAOS_SEED, schedule_mode="threaded")
    with pytest.raises(SchedulerError, match="reconcile phase failed") as info:
        run_confederation(
            "memory",
            {},
            CHAOS_SEED,
            instrument=True,
            schedule_mode="threaded",
        )
    assert isinstance(info.value.__cause__, LockDisciplineError)


def test_unsynchronized_peek_is_caught_in_async_task(monkeypatch):
    """The same leaky reconcile under the pipelined scheduler: the
    peek runs on the event-loop thread but *outside* the store lock,
    so the proxy still trips, and the async scheduler wraps it with
    the identical error surface as the threaded one."""
    original = Participant.reconcile

    def leaky_reconcile(self):
        len(self.store._log)  # peek outside the lock, same thread
        return original(self)

    monkeypatch.setattr(Participant, "reconcile", leaky_reconcile)
    run_confederation("memory", {}, CHAOS_SEED, schedule_mode="async")
    with pytest.raises(SchedulerError, match="reconcile phase failed") as info:
        run_confederation(
            "memory",
            {},
            CHAOS_SEED,
            instrument=True,
            schedule_mode="async",
        )
    assert isinstance(info.value.__cause__, LockDisciplineError)
