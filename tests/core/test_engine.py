"""Engine tests: the scenarios of Figures 1-2 and Section 4.2, run directly
against ``Reconciler`` with hand-built batches."""

from __future__ import annotations


from repro.core import ParticipantState, Reconciler
from repro.instance import MemoryInstance
from repro.model import Delete, Insert, Modify, make_transaction

from tests.core.helpers import GraphBuilder


RAT1 = ("rat", "prot1", "cell-metab")
RAT1_IMMUNE = ("rat", "prot1", "immune")
RAT1_RESP = ("rat", "prot1", "cell-resp")
MOUSE2 = ("mouse", "prot2", "immune")
MOUSE2_RESP = ("mouse", "prot2", "cell-resp")
MOUSE3_RESP = ("mouse", "prot3", "cell-resp")


def make_reconciler(schema, participant):
    instance = MemoryInstance(schema)
    state = ParticipantState(participant)
    return Reconciler(schema, instance, state), instance, state


class TestSimpleAcceptance:
    def test_accepts_single_trusted_insert(self, schema):
        reconciler, instance, state = make_reconciler(schema, 1)
        builder = GraphBuilder()
        txn = make_transaction(2, 0, [Insert("F", MOUSE2, 2)])
        builder.add(txn)
        result = reconciler.reconcile(builder.batch(1, [(txn, 1)]))
        assert result.accepted == [txn.tid]
        assert instance.contains_row("F", MOUSE2)
        assert state.applied == {txn.tid}
        assert result.updates_applied == 1

    def test_chain_applied_through_extension(self, schema):
        # Accepting a modify transitively applies its untrusted antecedent.
        reconciler, instance, state = make_reconciler(schema, 1)
        builder = GraphBuilder()
        x30 = make_transaction(3, 0, [Insert("F", RAT1, 3)])
        x31 = make_transaction(3, 1, [Modify("F", RAT1, RAT1_IMMUNE, 3)])
        builder.add(x30)
        builder.add(x31, antecedents=[x30.tid])
        # Only x31 is delivered as trusted; x30 rides along in its extension.
        result = reconciler.reconcile(builder.batch(1, [(x31, 1)]))
        assert result.accepted == [x31.tid]
        assert set(result.applied) == {x30.tid, x31.tid}
        assert instance.contains_row("F", RAT1_IMMUNE)
        assert state.applied == {x30.tid, x31.tid}

    def test_incremental_reconciliation_applies_only_residual(self, schema):
        reconciler, instance, state = make_reconciler(schema, 1)
        builder = GraphBuilder()
        x30 = make_transaction(3, 0, [Insert("F", RAT1, 3)])
        builder.add(x30)
        reconciler.reconcile(builder.batch(1, [(x30, 1)]))
        assert instance.contains_row("F", RAT1)

        x31 = make_transaction(3, 1, [Modify("F", RAT1, RAT1_IMMUNE, 3)])
        builder.add(x31, antecedents=[x30.tid])
        result = reconciler.reconcile(builder.batch(2, [(x31, 1)]))
        assert result.accepted == [x31.tid]
        assert instance.contains_row("F", RAT1_IMMUNE)
        assert not instance.contains_row("F", RAT1)

    def test_untrusted_root_is_not_delivered_model(self, schema):
        # The store only delivers trusted roots; an empty batch is a no-op.
        reconciler, instance, state = make_reconciler(schema, 1)
        builder = GraphBuilder()
        result = reconciler.reconcile(builder.batch(1, []))
        assert result.accepted == []
        assert result.summary().startswith("recno=1")


class TestRejection:
    def test_incompatible_with_instance_rejected(self, schema):
        reconciler, instance, state = make_reconciler(schema, 2)
        instance.apply(Insert("F", RAT1_RESP, 2))
        builder = GraphBuilder()
        x30 = make_transaction(3, 0, [Insert("F", RAT1, 3)])
        builder.add(x30)
        result = reconciler.reconcile(builder.batch(1, [(x30, 1)]))
        assert result.rejected == [x30.tid]
        assert state.rejected == {x30.tid}
        assert instance.contains_row("F", RAT1_RESP)

    def test_dependent_of_rejected_is_rejected(self, schema):
        reconciler, instance, state = make_reconciler(schema, 2)
        instance.apply(Insert("F", RAT1_RESP, 2))
        builder = GraphBuilder()
        x30 = make_transaction(3, 0, [Insert("F", RAT1, 3)])
        builder.add(x30)
        reconciler.reconcile(builder.batch(1, [(x30, 1)]))

        x31 = make_transaction(3, 1, [Modify("F", RAT1, RAT1_IMMUNE, 3)])
        builder.add(x31, antecedents=[x30.tid])
        result = reconciler.reconcile(builder.batch(2, [(x31, 1)]))
        assert result.rejected == [x31.tid]

    def test_own_delta_conflict_rejected(self, schema):
        # CheckState line 7: the participant prefers its own version even
        # when the instance test alone would admit the remote update.
        reconciler, instance, state = make_reconciler(schema, 2)
        # Own delta this epoch deleted the rat tuple.
        own_delete = Delete("F", RAT1, 2)
        builder = GraphBuilder()
        remote = make_transaction(3, 0, [Insert("F", RAT1_IMMUNE, 3)])
        builder.add(remote)
        result = reconciler.reconcile(
            builder.batch(1, [(remote, 1)]), own_updates=[own_delete]
        )
        assert result.rejected == [remote.tid]

    def test_higher_priority_accept_rejects_lower(self, schema):
        reconciler, instance, state = make_reconciler(schema, 1)
        builder = GraphBuilder()
        high = make_transaction(2, 0, [Insert("F", RAT1_IMMUNE, 2)])
        low = make_transaction(3, 0, [Insert("F", RAT1_RESP, 3)])
        builder.add(high)
        builder.add(low)
        result = reconciler.reconcile(builder.batch(1, [(high, 5), (low, 1)]))
        assert result.accepted == [high.tid]
        assert result.rejected == [low.tid]
        assert instance.contains_row("F", RAT1_IMMUNE)

    def test_conflict_with_rejected_does_not_block(self, schema):
        # A transaction conflicting only with an already-rejected one is
        # accepted (DoGroup removes rejected members from the group).
        reconciler, instance, state = make_reconciler(schema, 1)
        instance.apply(Insert("F", ("rat", "prot9", "x"), 1))
        builder = GraphBuilder()
        # bad is incompatible with the instance; good conflicts with bad.
        bad = make_transaction(3, 0, [Insert("F", ("rat", "prot9", "y"), 3)])
        good = make_transaction(2, 0, [Insert("F", ("rat", "prot9", "x"), 2)])
        builder.add(bad)
        builder.add(good)
        result = reconciler.reconcile(builder.batch(1, [(bad, 1), (good, 1)]))
        assert bad.tid in result.rejected
        assert good.tid in result.accepted  # idempotent re-insert


class TestDeferral:
    def test_equal_priority_conflict_defers_both(self, schema):
        reconciler, instance, state = make_reconciler(schema, 1)
        builder = GraphBuilder()
        left = make_transaction(2, 0, [Insert("F", RAT1_IMMUNE, 2)])
        right = make_transaction(3, 0, [Insert("F", RAT1_RESP, 3)])
        builder.add(left)
        builder.add(right)
        result = reconciler.reconcile(builder.batch(1, [(left, 1), (right, 1)]))
        assert set(result.deferred) == {left.tid, right.tid}
        assert result.accepted == []
        assert instance.count("F") == 0
        assert state.dirty_keys == {("F", ("rat", "prot1"))}
        assert len(state.conflict_groups) == 1

    def test_new_transaction_touching_dirty_key_deferred(self, schema):
        reconciler, instance, state = make_reconciler(schema, 1)
        builder = GraphBuilder()
        left = make_transaction(2, 0, [Insert("F", RAT1_IMMUNE, 2)])
        right = make_transaction(3, 0, [Insert("F", RAT1_RESP, 3)])
        builder.add(left)
        builder.add(right)
        reconciler.reconcile(builder.batch(1, [(left, 1), (right, 1)]))

        # A third, non-conflicting-with-anything insert of the same key
        # arrives later; the dirty-value rule defers it.
        late = make_transaction(4, 0, [Insert("F", RAT1_IMMUNE, 4)])
        builder.add(late)
        result = reconciler.reconcile(builder.batch(2, [(late, 1)]))
        assert late.tid in result.deferred

    def test_conflict_with_higher_priority_deferred_defers(self, schema):
        reconciler, instance, state = make_reconciler(schema, 1)
        builder = GraphBuilder()
        # Two high-priority transactions conflict -> both deferred.
        high_a = make_transaction(2, 0, [Insert("F", RAT1_IMMUNE, 2)])
        high_b = make_transaction(3, 0, [Insert("F", RAT1_RESP, 3)])
        # A lower-priority transaction conflicting with them must defer,
        # not reject: the user may reject both high ones later.
        low = make_transaction(4, 0, [Insert("F", RAT1, 4)])
        builder.add(high_a)
        builder.add(high_b)
        builder.add(low)
        result = reconciler.reconcile(
            builder.batch(1, [(high_a, 5), (high_b, 5), (low, 1)])
        )
        assert set(result.deferred) == {high_a.tid, high_b.tid, low.tid}

    def test_deferred_reconsidered_and_accepted_after_competitor_gone(
        self, schema
    ):
        reconciler, instance, state = make_reconciler(schema, 1)
        builder = GraphBuilder()
        left = make_transaction(2, 0, [Insert("F", RAT1_IMMUNE, 2)])
        right = make_transaction(3, 0, [Insert("F", RAT1_RESP, 3)])
        builder.add(left)
        builder.add(right)
        reconciler.reconcile(builder.batch(1, [(left, 1), (right, 1)]))
        # Simulate resolution rejecting `right` out-of-band, then re-run.
        state.record_rejected([right.tid])
        result = reconciler.reconcile(builder.batch(2, []))
        assert result.accepted == [left.tid]
        assert instance.contains_row("F", RAT1_IMMUNE)
        assert state.dirty_keys == set()
        assert state.conflict_groups == {}


class TestFigure2:
    """The full worked example of Figures 1-2, at the engine level."""

    def test_four_epochs(self, schema):
        # Transactions as published.
        x30 = make_transaction(3, 0, [Insert("F", RAT1, 3)])
        x31 = make_transaction(3, 1, [Modify("F", RAT1, RAT1_IMMUNE, 3)])
        x20 = make_transaction(2, 0, [Insert("F", MOUSE2, 2)])
        x21 = make_transaction(2, 1, [Insert("F", RAT1_RESP, 2)])

        builder = GraphBuilder()
        builder.add(x30)
        builder.add(x31, antecedents=[x30.tid])
        builder.add(x20)
        builder.add(x21)

        # Epoch 1: p3 publishes and reconciles; own updates only.
        recon3, inst3, state3 = make_reconciler(schema, 3)
        inst3.apply_all([u for u in x30.updates] + [u for u in x31.updates])
        state3.record_applied([x30.tid, x31.tid])
        state3.graph.merge(builder.graph)
        result = recon3.reconcile(builder.batch(1, []))
        assert inst3.snapshot()["F"] == {("rat", "prot1"): RAT1_IMMUNE}

        # Epoch 2: p2 publishes its two inserts, then reconciles seeing
        # p3's transactions (trusted at priority 1).
        recon2, inst2, state2 = make_reconciler(schema, 2)
        inst2.apply_all([u for u in x20.updates] + [u for u in x21.updates])
        state2.record_applied([x20.tid, x21.tid])
        result = recon2.reconcile(
            builder.batch(2, [(x30, 1), (x31, 1)]),
            own_updates=list(x20.updates) + list(x21.updates),
        )
        assert set(result.rejected) == {x30.tid, x31.tid}
        assert inst2.snapshot()["F"] == {
            ("mouse", "prot2"): MOUSE2,
            ("rat", "prot1"): RAT1_RESP,
        }

        # Epoch 3: p3 reconciles again, sees p2's transactions.
        result = recon3.reconcile(builder.batch(3, [(x20, 1), (x21, 1)]))
        assert result.accepted == [x20.tid]
        assert result.rejected == [x21.tid]
        assert inst3.snapshot()["F"] == {
            ("mouse", "prot2"): MOUSE2,
            ("rat", "prot1"): RAT1_IMMUNE,
        }

        # Epoch 4: p1 reconciles, trusting everyone equally.
        recon1, inst1, state1 = make_reconciler(schema, 1)
        result = recon1.reconcile(
            builder.batch(4, [(x30, 1), (x31, 1), (x20, 1), (x21, 1)])
        )
        assert result.accepted == [x20.tid]
        assert set(result.deferred) == {x30.tid, x31.tid, x21.tid}
        assert inst1.snapshot()["F"] == {("mouse", "prot2"): MOUSE2}

        # The deferral produced a single insert/insert conflict group at
        # the rat key, with three options (cell-metab, immune, cell-resp).
        groups = state1.open_conflicts()
        assert len(groups) == 1
        group = groups[0]
        assert group.key == ("F", ("rat", "prot1"))
        assert len(group.options) == 3


class TestSection42LeastInteraction:
    def test_revised_conflict_no_longer_blocks(self, schema):
        # Section 4.2: p3 inserted (mouse, prot2, cell-resp) then fixed it
        # to prot3; X2:0's insert of (mouse, prot2, immune) must be
        # accepted because the flattened own-delta no longer collides.
        recon3, inst3, state3 = make_reconciler(schema, 3)
        x32 = make_transaction(3, 2, [Insert("F", MOUSE2_RESP, 3)])
        x33 = make_transaction(
            3, 3, [Modify("F", MOUSE2_RESP, MOUSE3_RESP, 3)]
        )
        inst3.apply_all(list(x32.updates) + list(x33.updates))
        state3.record_applied([x32.tid, x33.tid])

        builder = GraphBuilder()
        builder.add(x32)
        builder.add(x33, antecedents=[x32.tid])
        x20 = make_transaction(2, 0, [Insert("F", MOUSE2, 2)])
        builder.add(x20)

        result = recon3.reconcile(
            builder.batch(1, [(x20, 1)]),
            own_updates=list(x32.updates) + list(x33.updates),
        )
        assert result.accepted == [x20.tid]
        assert inst3.contains_row("F", MOUSE2)
        assert inst3.contains_row("F", MOUSE3_RESP)


class TestMonotonicity:
    def test_applied_transactions_never_roll_back(self, schema):
        reconciler, instance, state = make_reconciler(schema, 1)
        builder = GraphBuilder()
        first = make_transaction(2, 0, [Insert("F", RAT1_IMMUNE, 2)])
        builder.add(first)
        reconciler.reconcile(builder.batch(1, [(first, 1)]))
        assert instance.contains_row("F", RAT1_IMMUNE)

        # A conflicting insert arrives later, even at higher priority: the
        # applied update is not rolled back; the newcomer is rejected as
        # incompatible with the instance.
        later = make_transaction(3, 0, [Insert("F", RAT1_RESP, 3)])
        builder.add(later)
        result = reconciler.reconcile(builder.batch(2, [(later, 9)]))
        assert result.rejected == [later.tid]
        assert instance.contains_row("F", RAT1_IMMUNE)

    def test_replacement_of_applied_state_is_allowed(self, schema):
        # Monotonicity forbids rollback, not forward revision: a trusted
        # modify whose antecedent is already applied goes through.
        reconciler, instance, state = make_reconciler(schema, 1)
        builder = GraphBuilder()
        first = make_transaction(2, 0, [Insert("F", RAT1_IMMUNE, 2)])
        builder.add(first)
        reconciler.reconcile(builder.batch(1, [(first, 1)]))

        revision = make_transaction(
            3, 0, [Modify("F", RAT1_IMMUNE, RAT1_RESP, 3)]
        )
        builder.add(revision, antecedents=[first.tid])
        result = reconciler.reconcile(builder.batch(2, [(revision, 1)]))
        assert result.accepted == [revision.tid]
        assert instance.contains_row("F", RAT1_RESP)
