"""Unit tests for participant state bookkeeping and result records."""

from __future__ import annotations


from repro.core import Decision, ParticipantState, ReconcileResult
from repro.core.extensions import RelevantTransaction
from repro.model import Insert, TransactionId, make_transaction


def root(participant, seq, order):
    txn = make_transaction(
        participant, seq, [Insert("F", ("rat", f"p{seq}", "fn"), participant)]
    )
    return RelevantTransaction(txn, priority=1, order=order)


class TestParticipantState:
    def test_initial_state_is_empty(self):
        state = ParticipantState(7)
        assert state.participant == 7
        assert not state.applied and not state.rejected
        assert state.deferred == {}
        assert state.dirty_keys == set()
        assert state.last_recno == 0

    def test_record_applied_supersedes_everything(self):
        state = ParticipantState(1)
        tid = TransactionId(2, 0)
        state.record_rejected([tid])
        state.record_applied([tid])
        assert tid in state.applied
        assert tid not in state.rejected
        assert state.is_decided(tid)

    def test_record_deferred_and_reconsider(self):
        state = ParticipantState(1)
        entry = root(2, 0, order=5)
        state.record_deferred(entry, recno=3)
        assert state.is_deferred(entry.tid)
        assert state.deferred_roots() == [entry]
        state.record_applied([entry.tid])
        assert not state.is_deferred(entry.tid)

    def test_deferred_roots_sorted_by_order(self):
        state = ParticipantState(1)
        late = root(2, 1, order=9)
        early = root(3, 0, order=2)
        state.record_deferred(late, recno=1)
        state.record_deferred(early, recno=1)
        assert [r.order for r in state.deferred_roots()] == [2, 9]

    def test_replace_soft_state(self):
        state = ParticipantState(1)
        state.replace_soft_state({("F", ("k",))}, {})
        assert state.dirty_keys == {("F", ("k",))}
        state.replace_soft_state(set(), {})
        assert state.dirty_keys == set()

    def test_rejection_leaves_deferred(self):
        state = ParticipantState(1)
        entry = root(2, 0, order=1)
        state.record_deferred(entry, recno=1)
        state.record_rejected([entry.tid])
        assert not state.is_deferred(entry.tid)
        assert entry.tid in state.rejected


class TestDecision:
    def test_str_values(self):
        assert str(Decision.ACCEPT) == "accept"
        assert str(Decision.REJECT) == "reject"
        assert str(Decision.DEFER) == "defer"


class TestReconcileResult:
    def test_decided_counts_final_verdicts(self):
        result = ReconcileResult(recno=1)
        result.accepted = [TransactionId(1, 0)]
        result.rejected = [TransactionId(2, 0), TransactionId(2, 1)]
        result.deferred = [TransactionId(3, 0)]
        assert result.decided == 3

    def test_summary_mentions_all_counts(self):
        result = ReconcileResult(recno=9)
        text = result.summary()
        assert "recno=9" in text
        assert "accepted=0" in text
        assert "deferred=0" in text
