"""Direct unit tests for conflict detection, groups, and options."""

from __future__ import annotations


from repro.core import RelevantTransaction, classify_conflict
from repro.core.conflicts import (
    build_conflict_groups,
    direct_conflict_points,
    directly_conflict,
    find_conflicts,
)
from repro.core.extensions import compute_update_extension
from repro.model import Delete, Insert, Modify, make_transaction

from tests.core.helpers import GraphBuilder


RAT1 = ("rat", "prot1", "cell-metab")
RAT1_IMMUNE = ("rat", "prot1", "immune")
RAT1_RESP = ("rat", "prot1", "cell-resp")
MOUSE2 = ("mouse", "prot2", "immune")


def extension_of(schema, builder, txn, priority=1, applied=()):
    root = RelevantTransaction(
        txn, priority=priority, order=builder.graph.order_of(txn.tid)
    )
    return compute_update_extension(
        schema, builder.graph, root, set(applied)
    )


class TestClassifyConflict:
    def test_insert_insert(self):
        left = Insert("F", RAT1, 1)
        right = Insert("F", RAT1_IMMUNE, 2)
        assert classify_conflict(left, right) == "insert/insert"

    def test_delete_vs_replace_sorted(self):
        deletion = Delete("F", RAT1, 1)
        replacement = Modify("F", RAT1, RAT1_IMMUNE, 2)
        assert classify_conflict(deletion, replacement) == "delete/replace"
        assert classify_conflict(replacement, deletion) == "delete/replace"

    def test_replace_replace(self):
        left = Modify("F", RAT1, RAT1_IMMUNE, 1)
        right = Modify("F", RAT1, RAT1_RESP, 2)
        assert classify_conflict(left, right) == "replace/replace"


class TestDirectConflicts:
    def test_disjoint_extensions_compared_flat(self, schema):
        builder = GraphBuilder()
        a = make_transaction(1, 0, [Insert("F", RAT1_IMMUNE, 1)])
        b = make_transaction(2, 0, [Insert("F", RAT1_RESP, 2)])
        builder.add(a)
        builder.add(b)
        ext_a = extension_of(schema, builder, a)
        ext_b = extension_of(schema, builder, b)
        assert directly_conflict(schema, builder.graph, ext_a, ext_b)
        points = direct_conflict_points(schema, builder.graph, ext_a, ext_b)
        assert points == [("insert/insert", ("F", ("rat", "prot1")))]

    def test_shared_members_excluded(self, schema):
        # Both extensions share the base insert; their *differences*
        # (two replacements of the same row) are what conflict.
        builder = GraphBuilder()
        base = make_transaction(1, 0, [Insert("F", RAT1, 1)])
        builder.add(base)
        left = make_transaction(2, 0, [Modify("F", RAT1, RAT1_IMMUNE, 2)])
        right = make_transaction(3, 0, [Modify("F", RAT1, RAT1_RESP, 3)])
        builder.add(left, antecedents=[base.tid])
        builder.add(right, antecedents=[base.tid])
        ext_left = extension_of(schema, builder, left)
        ext_right = extension_of(schema, builder, right)
        points = direct_conflict_points(
            schema, builder.graph, ext_left, ext_right
        )
        assert points == [("replace/replace", ("F", ("rat", "prot1")))]

    def test_identical_extensions_do_not_conflict(self, schema):
        builder = GraphBuilder()
        base = make_transaction(1, 0, [Insert("F", RAT1, 1)])
        builder.add(base)
        ext = extension_of(schema, builder, base)
        assert not directly_conflict(schema, builder.graph, ext, ext)

    def test_least_interaction_through_shared_chain(self, schema):
        # left revises the shared base's row; right extends left's result:
        # the shared prefix must not self-conflict.
        builder = GraphBuilder()
        base = make_transaction(1, 0, [Insert("F", RAT1, 1)])
        revise = make_transaction(2, 0, [Modify("F", RAT1, RAT1_IMMUNE, 2)])
        extend = make_transaction(
            3, 0, [Modify("F", RAT1_IMMUNE, RAT1_RESP, 3)]
        )
        builder.add(base)
        builder.add(revise, antecedents=[base.tid])
        builder.add(extend, antecedents=[revise.tid])
        ext_revise = extension_of(schema, builder, revise)
        ext_extend = extension_of(schema, builder, extend)
        # extend subsumes revise entirely; nothing unshared conflicts.
        assert ext_extend.subsumes(ext_revise)
        assert not directly_conflict(
            schema, builder.graph, ext_revise, ext_extend
        )


class TestFindConflicts:
    def test_adjacency_is_symmetric(self, schema):
        builder = GraphBuilder()
        a = make_transaction(1, 0, [Insert("F", RAT1_IMMUNE, 1)])
        b = make_transaction(2, 0, [Insert("F", RAT1_RESP, 2)])
        c = make_transaction(3, 0, [Insert("F", MOUSE2, 3)])
        for txn in (a, b, c):
            builder.add(txn)
        extensions = {
            txn.tid: extension_of(schema, builder, txn) for txn in (a, b, c)
        }
        conflicts = find_conflicts(schema, builder.graph, extensions).adjacency
        assert conflicts[a.tid] == {b.tid}
        assert conflicts[b.tid] == {a.tid}
        assert conflicts[c.tid] == set()

    def test_subsumed_pairs_skipped(self, schema):
        builder = GraphBuilder()
        base = make_transaction(1, 0, [Insert("F", RAT1, 1)])
        revision = make_transaction(1, 1, [Modify("F", RAT1, RAT1_IMMUNE, 1)])
        builder.add(base)
        builder.add(revision, antecedents=[base.tid])
        extensions = {
            base.tid: extension_of(schema, builder, base),
            revision.tid: extension_of(schema, builder, revision),
        }
        conflicts = find_conflicts(schema, builder.graph, extensions).adjacency
        assert conflicts[base.tid] == set()
        assert conflicts[revision.tid] == set()


class TestConflictGroups:
    def test_same_effect_transactions_share_an_option(self, schema):
        builder = GraphBuilder()
        a = make_transaction(1, 0, [Insert("F", RAT1_IMMUNE, 1)])
        b = make_transaction(2, 0, [Insert("F", RAT1_IMMUNE, 2)])  # agrees with a
        c = make_transaction(3, 0, [Insert("F", RAT1_RESP, 3)])
        for txn in (a, b, c):
            builder.add(txn)
        deferred = {
            txn.tid: extension_of(schema, builder, txn) for txn in (a, b, c)
        }
        groups = build_conflict_groups(schema, builder.graph, deferred)
        assert len(groups) == 1
        [group] = groups.values()
        assert group.key == ("F", ("rat", "prot1"))
        effects = {opt.effect: set(opt.transactions) for opt in group.options}
        assert effects[RAT1_IMMUNE] == {a.tid, b.tid}
        assert effects[RAT1_RESP] == {c.tid}

    def test_group_describe_lists_options(self, schema):
        builder = GraphBuilder()
        a = make_transaction(1, 0, [Insert("F", RAT1_IMMUNE, 1)])
        b = make_transaction(2, 0, [Insert("F", RAT1_RESP, 2)])
        builder.add(a)
        builder.add(b)
        deferred = {
            txn.tid: extension_of(schema, builder, txn) for txn in (a, b)
        }
        groups = build_conflict_groups(schema, builder.graph, deferred)
        [group] = groups.values()
        text = group.describe()
        assert "[0]" in text and "[1]" in text
        assert "X1:0" in text and "X2:0" in text
        assert group.group_id == (group.kind, group.key)
        assert set(group.transactions()) == {a.tid, b.tid}

    def test_deletes_of_different_versions_stay_separate_options(self, schema):
        """Deletions of *different row versions* of one key are mutually
        conflicting (only one antecedent exists), so collapsing them into
        a single shared option would leave a "conflict group" with no
        alternatives.  They must partition into one option each — found
        by Hypothesis (test_conflict_groups_offer_choices, seed 567)."""
        builder = GraphBuilder()
        base = make_transaction(1, 0, [Insert("F", RAT1, 1)])
        builder.add(base)
        del_a = make_transaction(2, 0, [Delete("F", RAT1, 2)])
        del_b = make_transaction(3, 0, [Delete("F", RAT1_IMMUNE, 3)])
        builder.add(del_a, antecedents=[base.tid])
        builder.add(del_b, antecedents=[base.tid])
        applied = {base.tid}
        deferred = {
            txn.tid: extension_of(schema, builder, txn, applied=applied)
            for txn in (del_a, del_b)
        }
        groups = build_conflict_groups(schema, builder.graph, deferred)
        [group] = groups.values()
        assert group.kind == "delete/delete"
        assert len(group.options) == 2
        assert all(opt.effect is None for opt in group.options)
        assert {opt.transactions for opt in group.options} == {
            (del_a.tid,),
            (del_b.tid,),
        }

    def test_delete_option_effect_is_none(self, schema):
        builder = GraphBuilder()
        base = make_transaction(1, 0, [Insert("F", RAT1, 1)])
        builder.add(base)
        deleter = make_transaction(2, 0, [Delete("F", RAT1, 2)])
        replacer = make_transaction(3, 0, [Modify("F", RAT1, RAT1_RESP, 3)])
        builder.add(deleter, antecedents=[base.tid])
        builder.add(replacer, antecedents=[base.tid])
        applied = {base.tid}
        deferred = {
            deleter.tid: extension_of(schema, builder, deleter, applied=applied),
            replacer.tid: extension_of(
                schema, builder, replacer, applied=applied
            ),
        }
        groups = build_conflict_groups(schema, builder.graph, deferred)
        [group] = groups.values()
        effects = {opt.effect for opt in group.options}
        assert None in effects  # the deletion option
        assert RAT1_RESP in effects
        delete_option = next(
            opt for opt in group.options if opt.effect is None
        )
        assert "delete" in delete_option.describe()
