"""Test helpers: hand-built transaction graphs and batches.

These stand in for the update store when exercising the engine directly:
tests declare transactions, antecedent edges, and publish order explicitly.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from repro.core import (
    ReconciliationBatch,
    RelevantTransaction,
    TransactionGraph,
)
from repro.model import Transaction, TransactionId


class GraphBuilder:
    """Incrementally builds a TransactionGraph with publish order."""

    def __init__(self) -> None:
        self.graph = TransactionGraph()
        self._order = 0

    def add(
        self,
        transaction: Transaction,
        antecedents: Iterable[TransactionId] = (),
    ) -> int:
        """Register a transaction; returns its publish order index."""
        order = self._order
        self.graph.add(transaction, antecedents, order)
        self._order += 1
        return order

    def batch(
        self,
        recno: int,
        trusted: Sequence[Tuple[Transaction, int]],
    ) -> ReconciliationBatch:
        """A batch delivering ``trusted`` (transaction, priority) roots."""
        roots = [
            RelevantTransaction(
                transaction=txn,
                priority=priority,
                order=self.graph.order_of(txn.tid),
            )
            for txn, priority in trusted
        ]
        roots.sort(key=lambda r: r.order)
        return ReconciliationBatch(recno=recno, roots=roots, graph=self.graph)
