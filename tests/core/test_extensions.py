"""Unit tests for transaction graphs and update extensions (Definition 3)."""

from __future__ import annotations

import pytest

from repro.core import RelevantTransaction, TransactionGraph
from repro.core.extensions import compute_update_extension, update_footprint
from repro.errors import ReconciliationError
from repro.model import Insert, Modify, TransactionId, make_transaction

from tests.core.helpers import GraphBuilder


RAT1 = ("rat", "prot1", "cell-metab")
RAT1_IMMUNE = ("rat", "prot1", "immune")
RAT1_RESP = ("rat", "prot1", "cell-resp")


@pytest.fixture
def chain_graph(schema):
    """X3:0 inserts, X3:1 modifies it, X2:0 modifies that again."""
    builder = GraphBuilder()
    x30 = make_transaction(3, 0, [Insert("F", RAT1, 3)])
    x31 = make_transaction(3, 1, [Modify("F", RAT1, RAT1_IMMUNE, 3)])
    x20 = make_transaction(2, 0, [Modify("F", RAT1_IMMUNE, RAT1_RESP, 2)])
    builder.add(x30)
    builder.add(x31, antecedents=[x30.tid])
    builder.add(x20, antecedents=[x31.tid])
    return builder, x30, x31, x20


class TestTransactionGraph:
    def test_lookup_and_order(self, chain_graph):
        builder, x30, x31, x20 = chain_graph
        graph = builder.graph
        assert graph.transaction(x30.tid) is x30
        assert graph.order_of(x30.tid) < graph.order_of(x31.tid)
        assert x30.tid in graph
        assert len(graph) == 3

    def test_unknown_transaction_raises(self):
        graph = TransactionGraph()
        with pytest.raises(ReconciliationError):
            graph.transaction(TransactionId(1, 0))
        with pytest.raises(ReconciliationError):
            graph.order_of(TransactionId(1, 0))

    def test_extension_transitive_closure(self, chain_graph):
        builder, x30, x31, x20 = chain_graph
        members = builder.graph.extension(x20.tid, applied=set())
        assert members == [x30.tid, x31.tid, x20.tid]

    def test_extension_skips_applied(self, chain_graph):
        builder, x30, x31, x20 = chain_graph
        members = builder.graph.extension(x20.tid, applied={x30.tid, x31.tid})
        assert members == [x20.tid]

    def test_extension_partial_applied(self, chain_graph):
        builder, x30, x31, x20 = chain_graph
        # x30 applied but x31 not: closure keeps x31 only.
        members = builder.graph.extension(x20.tid, applied={x30.tid})
        assert members == [x31.tid, x20.tid]

    def test_merge(self, chain_graph):
        builder, x30, x31, x20 = chain_graph
        other = TransactionGraph()
        other.merge(builder.graph)
        assert len(other) == 3
        assert other.antecedents_of(x31.tid) == (x30.tid,)


class TestUpdateExtension:
    def test_flattened_operations(self, schema, chain_graph):
        builder, x30, x31, x20 = chain_graph
        root = RelevantTransaction(x20, priority=1, order=2)
        extension = compute_update_extension(
            schema, builder.graph, root, applied=set()
        )
        assert extension.operations == (Insert("F", RAT1_RESP, 2),)
        assert extension.members == (x30.tid, x31.tid, x20.tid)
        assert extension.priority == 1

    def test_extension_relative_to_applied(self, schema, chain_graph):
        builder, x30, x31, x20 = chain_graph
        root = RelevantTransaction(x20, priority=1, order=2)
        extension = compute_update_extension(
            schema, builder.graph, root, applied={x30.tid, x31.tid}
        )
        assert extension.operations == (Modify("F", RAT1_IMMUNE, RAT1_RESP, 2),)

    def test_touched_keys_cover_whole_footprint(self, schema, chain_graph):
        builder, x30, x31, x20 = chain_graph
        root = RelevantTransaction(x20, priority=1, order=2)
        extension = compute_update_extension(
            schema, builder.graph, root, applied=set()
        )
        assert ("F", ("rat", "prot1")) in extension.touched

    def test_subsumption(self, schema, chain_graph):
        builder, x30, x31, x20 = chain_graph
        big = compute_update_extension(
            schema,
            builder.graph,
            RelevantTransaction(x20, priority=1, order=2),
            applied=set(),
        )
        small = compute_update_extension(
            schema,
            builder.graph,
            RelevantTransaction(x31, priority=1, order=1),
            applied=set(),
        )
        assert big.subsumes(small)
        assert not small.subsumes(big)

    def test_update_footprint_order(self, schema, chain_graph):
        builder, x30, x31, x20 = chain_graph
        footprint = update_footprint(
            builder.graph, [x30.tid, x31.tid, x20.tid]
        )
        assert footprint == [
            Insert("F", RAT1, 3),
            Modify("F", RAT1, RAT1_IMMUNE, 3),
            Modify("F", RAT1_IMMUNE, RAT1_RESP, 2),
        ]
