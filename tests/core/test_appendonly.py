"""Tests for append-only reconciliation (Definition 2)."""

from __future__ import annotations

import pytest

from repro.core import reconcile_append_only
from repro.errors import UpdateError
from repro.instance import MemoryInstance
from repro.model import Delete, Insert, make_transaction


RAT1_IMMUNE = ("rat", "prot1", "immune")
RAT1_RESP = ("rat", "prot1", "cell-resp")
MOUSE2 = ("mouse", "prot2", "immune")


class TestAppendOnly:
    def test_non_insert_rejected_by_contract(self, schema):
        instance = MemoryInstance(schema)
        bad = make_transaction(1, 0, [Delete("F", RAT1_IMMUNE, 1)])
        with pytest.raises(UpdateError):
            reconcile_append_only(schema, instance, [(bad, 1)])

    def test_non_conflicting_inserts_accepted(self, schema):
        instance = MemoryInstance(schema)
        a = make_transaction(1, 0, [Insert("F", RAT1_IMMUNE, 1)])
        b = make_transaction(2, 0, [Insert("F", MOUSE2, 2)])
        result = reconcile_append_only(schema, instance, [(a, 1), (b, 1)])
        assert set(result.accepted) == {a.tid, b.tid}
        assert instance.count("F") == 2

    def test_untrusted_rejected(self, schema):
        instance = MemoryInstance(schema)
        a = make_transaction(1, 0, [Insert("F", RAT1_IMMUNE, 1)])
        result = reconcile_append_only(schema, instance, [(a, 0)])
        assert result.rejected == [a.tid]
        assert instance.count("F") == 0

    def test_equal_priority_conflict_rejects_both(self, schema):
        instance = MemoryInstance(schema)
        a = make_transaction(1, 0, [Insert("F", RAT1_IMMUNE, 1)])
        b = make_transaction(2, 0, [Insert("F", RAT1_RESP, 2)])
        result = reconcile_append_only(schema, instance, [(a, 1), (b, 1)])
        assert set(result.rejected) == {a.tid, b.tid}
        assert instance.count("F") == 0

    def test_higher_priority_wins_conflict(self, schema):
        instance = MemoryInstance(schema)
        a = make_transaction(1, 0, [Insert("F", RAT1_IMMUNE, 1)])
        b = make_transaction(2, 0, [Insert("F", RAT1_RESP, 2)])
        result = reconcile_append_only(schema, instance, [(a, 5), (b, 1)])
        assert result.accepted == [a.tid]
        assert result.rejected == [b.tid]
        assert instance.contains_row("F", RAT1_IMMUNE)

    def test_conflict_with_prior_state_rejected(self, schema):
        instance = MemoryInstance(schema)
        instance.apply(Insert("F", RAT1_IMMUNE, 1))
        b = make_transaction(2, 0, [Insert("F", RAT1_RESP, 2)])
        result = reconcile_append_only(schema, instance, [(b, 9)])
        assert result.rejected == [b.tid]

    def test_duplicate_insert_of_existing_row_accepted(self, schema):
        instance = MemoryInstance(schema)
        instance.apply(Insert("F", RAT1_IMMUNE, 1))
        b = make_transaction(2, 0, [Insert("F", RAT1_IMMUNE, 2)])
        result = reconcile_append_only(schema, instance, [(b, 1)])
        assert result.accepted == [b.tid]
        assert instance.count("F") == 1
