"""Tests for user-driven conflict resolution."""

from __future__ import annotations

import pytest

from repro.core import ParticipantState, Reconciler, Resolution, resolve_conflicts
from repro.core.resolution import pending_resolutions
from repro.errors import ResolutionError
from repro.instance import MemoryInstance
from repro.model import Insert, Modify, make_transaction

from tests.core.helpers import GraphBuilder


RAT1 = ("rat", "prot1", "cell-metab")
RAT1_IMMUNE = ("rat", "prot1", "immune")
RAT1_RESP = ("rat", "prot1", "cell-resp")


def deferred_figure2_tail(schema):
    """p1's epoch-4 state from Figure 2: three deferred rat transactions."""
    instance = MemoryInstance(schema)
    state = ParticipantState(1)
    reconciler = Reconciler(schema, instance, state)
    builder = GraphBuilder()
    x30 = make_transaction(3, 0, [Insert("F", RAT1, 3)])
    x31 = make_transaction(3, 1, [Modify("F", RAT1, RAT1_IMMUNE, 3)])
    x21 = make_transaction(2, 1, [Insert("F", RAT1_RESP, 2)])
    builder.add(x30)
    builder.add(x31, antecedents=[x30.tid])
    builder.add(x21)
    reconciler.reconcile(builder.batch(1, [(x30, 1), (x31, 1), (x21, 1)]))
    return reconciler, instance, state, (x30, x31, x21)


class TestResolveConflicts:
    def test_choosing_an_option_applies_it_and_rejects_losers(self, schema):
        reconciler, instance, state, (x30, x31, x21) = deferred_figure2_tail(
            schema
        )
        groups = state.open_conflicts()
        assert len(groups) == 1
        group = groups[0]
        # Find the option whose effect is the immune row (x31's chain).
        immune_index = next(
            i for i, opt in enumerate(group.options) if opt.effect == RAT1_IMMUNE
        )
        result = resolve_conflicts(
            reconciler,
            [Resolution(group_id=group.group_id, chosen_option=immune_index)],
        )
        assert x31.tid in result.accepted
        assert instance.contains_row("F", RAT1_IMMUNE)
        # x21 was rejected; x30 is x31's antecedent, applied, not rejected.
        assert x21.tid in state.rejected
        assert x30.tid in state.applied
        assert x30.tid not in state.rejected
        assert state.deferred == {}
        assert state.conflict_groups == {}
        assert state.dirty_keys == set()

    def test_choosing_the_antecedent_option_rejects_dependent(self, schema):
        reconciler, instance, state, (x30, x31, x21) = deferred_figure2_tail(
            schema
        )
        group = state.open_conflicts()[0]
        metab_index = next(
            i for i, opt in enumerate(group.options) if opt.effect == RAT1
        )
        result = resolve_conflicts(
            reconciler,
            [Resolution(group_id=group.group_id, chosen_option=metab_index)],
        )
        assert x30.tid in result.accepted
        assert instance.contains_row("F", RAT1)
        # x31 depends on a state the user overrode; it was in a losing
        # option, so it is rejected.
        assert x31.tid in state.rejected
        assert x21.tid in state.rejected

    def test_rejecting_every_option(self, schema):
        reconciler, instance, state, (x30, x31, x21) = deferred_figure2_tail(
            schema
        )
        group = state.open_conflicts()[0]
        resolve_conflicts(
            reconciler,
            [Resolution(group_id=group.group_id, chosen_option=None)],
        )
        assert instance.count("F") == 0
        assert {x30.tid, x31.tid, x21.tid} <= state.rejected
        assert state.deferred == {}

    def test_unknown_group_raises(self, schema):
        reconciler, instance, state, _txns = deferred_figure2_tail(schema)
        with pytest.raises(ResolutionError):
            resolve_conflicts(
                reconciler,
                [Resolution(group_id=("insert/insert", ("F", ("no",))), chosen_option=0)],
            )

    def test_bad_option_index_raises(self, schema):
        reconciler, instance, state, _txns = deferred_figure2_tail(schema)
        group = state.open_conflicts()[0]
        with pytest.raises(ResolutionError):
            resolve_conflicts(
                reconciler,
                [Resolution(group_id=group.group_id, chosen_option=99)],
            )

    def test_pending_resolutions_describe_groups(self, schema):
        reconciler, instance, state, _txns = deferred_figure2_tail(schema)
        descriptions = pending_resolutions(reconciler)
        assert len(descriptions) == 1
        assert "rat" in descriptions[0]

    def test_dirty_keys_released_after_resolution(self, schema):
        reconciler, instance, state, (x30, x31, x21) = deferred_figure2_tail(
            schema
        )
        assert state.dirty_keys == {("F", ("rat", "prot1"))}
        group = state.open_conflicts()[0]
        resolve_conflicts(
            reconciler, [Resolution(group_id=group.group_id, chosen_option=None)]
        )
        assert state.dirty_keys == set()

        # A new transaction on the formerly dirty key now goes through.
        builder = GraphBuilder()
        state.graph.merge(builder.graph)
        late = make_transaction(4, 0, [Insert("F", RAT1_IMMUNE, 4)])
        order = len(state.graph)
        state.graph.add(late, (), order + 100)
        from repro.core import ReconciliationBatch, RelevantTransaction

        batch = ReconciliationBatch(
            recno=3,
            roots=[RelevantTransaction(late, priority=1, order=order + 100)],
            graph=state.graph,
        )
        result = reconciler.reconcile(batch)
        assert result.accepted == [late.tid]
