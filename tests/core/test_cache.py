"""Tests for the incremental reconciliation caches (repro.core.cache).

Covers the cache contract directly (hits, revalidation, invalidation on
applied-set growth, pruning) and its integration with the engine: cached
and fresh extensions must be indistinguishable across deferral and
acceptance cycles, ``compute_update_extension`` must trace each footprint
exactly once, and ``UpdateSoftState`` must not recompute extensions it
already computed in the same ``reconcile`` call.
"""

from __future__ import annotations

import pytest

import repro.core.cache as cache_module
from repro.core import ParticipantState, Reconciler
from repro.core.cache import CacheStats, ConflictCache, ExtensionCache
from repro.core.extensions import (
    RelevantTransaction,
    compute_update_extension,
)
from repro.instance import MemoryInstance
from repro.model import Insert, Modify, make_transaction
from repro.model.flatten import trace_runs

from tests.core.helpers import GraphBuilder


RAT1 = ("rat", "prot1", "cell-metab")
RAT1_IMMUNE = ("rat", "prot1", "immune")
MOUSE2 = ("mouse", "prot2", "immune")
MOUSE2_RESP = ("mouse", "prot2", "cell-resp")
MOUSE3 = ("mouse", "prot3", "cell-metab")


def make_reconciler(schema, participant, caching=True):
    instance = MemoryInstance(schema)
    state = ParticipantState(participant)
    reconciler = Reconciler(
        schema, instance, state, cache=ExtensionCache(enabled=caching)
    )
    return reconciler, instance, state


def relevant(builder, txn, priority=1):
    return RelevantTransaction(
        transaction=txn,
        priority=priority,
        order=builder.graph.order_of(txn.tid),
    )


class TestExtensionCache:
    def test_hit_on_same_version(self, schema):
        builder = GraphBuilder()
        txn = make_transaction(2, 0, [Insert("F", MOUSE2, 2)])
        builder.add(txn)
        root = relevant(builder, txn)
        cache = ExtensionCache()
        first = cache.get_or_compute(schema, builder.graph, root, set(), 0)
        second = cache.get_or_compute(schema, builder.graph, root, set(), 0)
        assert second is first
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_revalidation_when_applied_grew_elsewhere(self, schema):
        """Applied grew, but not with a member of the cached closure: the
        cached extension is provably unchanged and is reused."""
        builder = GraphBuilder()
        txn = make_transaction(2, 0, [Insert("F", MOUSE2, 2)])
        other = make_transaction(3, 0, [Insert("F", MOUSE3, 3)])
        builder.add(txn)
        builder.add(other)
        root = relevant(builder, txn)
        cache = ExtensionCache()
        first = cache.get_or_compute(schema, builder.graph, root, set(), 0)
        second = cache.get_or_compute(
            schema, builder.graph, root, {other.tid}, 1
        )
        assert second is first
        assert cache.stats.revalidations == 1

    def test_invalidation_when_member_applied(self, schema):
        """A member of the closure became applied: the extension must be
        recomputed (it now excludes that member)."""
        builder = GraphBuilder()
        base = make_transaction(3, 0, [Insert("F", RAT1, 3)])
        revision = make_transaction(3, 1, [Modify("F", RAT1, RAT1_IMMUNE, 3)])
        builder.add(base)
        builder.add(revision, antecedents=[base.tid])
        root = relevant(builder, revision)
        cache = ExtensionCache()
        first = cache.get_or_compute(schema, builder.graph, root, set(), 0)
        assert set(first.members) == {base.tid, revision.tid}
        second = cache.get_or_compute(
            schema, builder.graph, root, {base.tid}, 1
        )
        assert second is not first
        assert set(second.members) == {revision.tid}
        assert cache.stats.misses == 2
        # And the recomputed entry matches a fresh computation exactly.
        fresh = compute_update_extension(
            schema, builder.graph, root, {base.tid}
        )
        assert second.members == fresh.members
        assert second.operations == fresh.operations
        assert second.touched == fresh.touched

    def test_prune_drops_unlisted_roots(self, schema):
        builder = GraphBuilder()
        txn = make_transaction(2, 0, [Insert("F", MOUSE2, 2)])
        builder.add(txn)
        root = relevant(builder, txn)
        cache = ExtensionCache()
        cache.get_or_compute(schema, builder.graph, root, set(), 0)
        assert len(cache) == 1
        cache.prune([])
        assert len(cache) == 0

    def test_disabled_cache_always_recomputes(self, schema):
        builder = GraphBuilder()
        txn = make_transaction(2, 0, [Insert("F", MOUSE2, 2)])
        builder.add(txn)
        root = relevant(builder, txn)
        cache = ExtensionCache(enabled=False)
        first = cache.get_or_compute(schema, builder.graph, root, set(), 0)
        second = cache.get_or_compute(schema, builder.graph, root, set(), 0)
        assert first is not second
        assert len(cache) == 0


class TestConflictCache:
    def test_identity_keyed_lookup_and_invalidation(self, schema):
        builder = GraphBuilder()
        a = make_transaction(1, 0, [Insert("F", MOUSE2, 1)])
        b = make_transaction(2, 0, [Insert("F", MOUSE2_RESP, 2)])
        builder.add(a)
        builder.add(b)
        ext_a = compute_update_extension(
            schema, builder.graph, relevant(builder, a), set()
        )
        ext_b = compute_update_extension(
            schema, builder.graph, relevant(builder, b), set()
        )
        cache = ConflictCache()
        key = ConflictCache.pair_key(a.tid, b.tid)
        assert cache.lookup(key, ext_a, ext_b) is None
        cache.store(key, ext_a, ext_b, [("insert/insert", ("F", ("m",)))])
        assert cache.lookup(key, ext_a, ext_b) == (
            ("insert/insert", ("F", ("m",))),
        )
        # Either argument order resolves the same unordered pair.
        assert cache.lookup(key, ext_b, ext_a) == (
            ("insert/insert", ("F", ("m",))),
        )
        # A recomputed (new) extension object invalidates the entry.
        ext_b2 = compute_update_extension(
            schema, builder.graph, relevant(builder, b), set()
        )
        assert cache.lookup(key, ext_a, ext_b2) is None

    def test_empty_points_are_cached_too(self, schema):
        builder = GraphBuilder()
        a = make_transaction(1, 0, [Insert("F", MOUSE2, 1)])
        b = make_transaction(2, 0, [Insert("F", MOUSE3, 2)])
        builder.add(a)
        builder.add(b)
        ext_a = compute_update_extension(
            schema, builder.graph, relevant(builder, a), set()
        )
        ext_b = compute_update_extension(
            schema, builder.graph, relevant(builder, b), set()
        )
        cache = ConflictCache()
        key = ConflictCache.pair_key(a.tid, b.tid)
        cache.store(key, ext_a, ext_b, [])
        assert cache.lookup(key, ext_a, ext_b) == ()


class TestCacheStats:
    def test_hit_rate_and_delta(self):
        stats = CacheStats(hits=3, misses=1, revalidations=2)
        assert stats.reuses == 5
        assert stats.hit_rate == pytest.approx(5 / 6)
        delta = stats.minus(CacheStats(hits=1, misses=1))
        assert delta.hits == 2 and delta.misses == 0
        assert CacheStats().hit_rate == 0.0

    def test_as_dict_round_trip(self):
        stats = CacheStats(hits=1, misses=1, pair_hits=2, pair_misses=2)
        d = stats.as_dict()
        assert d["hits"] == 1 and d["pair_hit_rate"] == 0.5


class TestEngineIntegration:
    def _conflicting_pair_batchset(self, schema):
        """Two same-priority roots that conflict — both get deferred and
        reconsidered on every subsequent reconcile."""
        builder = GraphBuilder()
        a = make_transaction(2, 0, [Insert("F", MOUSE2, 2)])
        b = make_transaction(3, 0, [Insert("F", MOUSE2_RESP, 3)])
        builder.add(a)
        builder.add(b)
        return builder, a, b

    def test_deferred_roots_hit_the_cache_across_epochs(self, schema):
        reconciler, _instance, state = make_reconciler(schema, 1)
        builder, a, b = self._conflicting_pair_batchset(schema)
        first = reconciler.reconcile(builder.batch(1, [(a, 1), (b, 1)]))
        assert set(first.deferred) == {a.tid, b.tid}
        assert first.cache_stats.misses == 2  # cold: both roots computed

        # Reconsidering the same deferred pair computes nothing new.
        second = reconciler.reconcile(builder.batch(2, []))
        assert set(second.deferred) == {a.tid, b.tid}
        assert second.cache_stats.misses == 0
        assert second.cache_stats.reuses > 0
        assert second.cache_stats.pair_misses == 0

    def test_soft_state_reuses_epoch_extensions(self, schema, monkeypatch):
        """Zero extension recomputations in UpdateSoftState for roots
        already computed in the same reconcile call."""
        calls = []
        real = cache_module.compute_update_extension

        def counting(schema_, graph, root, applied):
            calls.append(root.tid)
            return real(schema_, graph, root, applied)

        monkeypatch.setattr(
            cache_module, "compute_update_extension", counting
        )
        reconciler, _instance, _state = make_reconciler(schema, 1)
        builder, a, b = self._conflicting_pair_batchset(schema)
        reconciler.reconcile(builder.batch(1, [(a, 1), (b, 1)]))
        # Each deferred root was computed exactly once, in the main loop;
        # UpdateSoftState reused both extensions.
        assert sorted(calls) == sorted([a.tid, b.tid])

    def test_compute_update_extension_traces_once_per_root(self, schema):
        reconciler, _instance, _state = make_reconciler(schema, 1)
        builder = GraphBuilder()
        # Multi-update footprints so the single-update fast path does not
        # kick in: each root's extension must be traced exactly once — not
        # twice (flatten + keys_touched) as in the seed implementation.
        a = make_transaction(
            2, 0, [Insert("F", MOUSE2, 2), Insert("F", MOUSE3, 2)]
        )
        b = make_transaction(
            3,
            0,
            [Insert("F", MOUSE2_RESP, 3), Insert("F", ("mouse", "p8", "x"), 3)],
        )
        builder.add(a)
        builder.add(b)
        before = trace_runs()
        reconciler.reconcile(builder.batch(1, [(a, 1), (b, 1)]))
        # One trace per root extension; the pairwise conflict check and
        # UpdateSoftState reuse the flattened operations without retracing.
        # Nothing was accepted, so no application-time flattening adds
        # traces.
        assert trace_runs() - before == 2

    def test_cached_engine_matches_uncached_across_cycles(self, schema):
        """Deferral → new epoch → acceptance cycles decide identically
        with and without caching."""
        runs = {}
        for caching in (True, False):
            reconciler, instance, state = make_reconciler(
                schema, 1, caching=caching
            )
            builder, a, b = self._conflicting_pair_batchset(schema)
            log = []
            r1 = reconciler.reconcile(builder.batch(1, [(a, 1), (b, 1)]))
            log.append((sorted(r1.accepted), sorted(r1.rejected),
                        sorted(r1.deferred), r1.conflict_groups))
            # A higher-priority revision of MOUSE2 arrives: it conflicts
            # with both deferred roots and wins, rejecting them.
            c = make_transaction(4, 0, [Insert("F", MOUSE3, 4)])
            builder.add(c)
            r2 = reconciler.reconcile(builder.batch(2, [(c, 2)]))
            log.append((sorted(r2.accepted), sorted(r2.rejected),
                        sorted(r2.deferred), r2.conflict_groups))
            r3 = reconciler.reconcile(builder.batch(3, []))
            log.append((sorted(r3.accepted), sorted(r3.rejected),
                        sorted(r3.deferred), r3.conflict_groups))
            runs[caching] = (log, instance.snapshot(), set(state.applied),
                             set(state.rejected), set(state.deferred),
                             set(state.dirty_keys))
        assert runs[True] == runs[False]

    def test_acceptance_invalidates_dependent_deferred_extension(self, schema):
        """When an antecedent of a deferred root is applied, the deferred
        root's cached extension is recomputed against the new applied set
        (and shrinks accordingly)."""
        reconciler, instance, state = make_reconciler(schema, 1)
        builder = GraphBuilder()
        target_x = ("mouse", "prot9", "fn-x")
        target_y = ("mouse", "prot9", "fn-y")
        base = make_transaction(3, 0, [Insert("F", MOUSE3, 3)])
        revision = make_transaction(3, 1, [Modify("F", MOUSE3, target_x, 3)])
        rival = make_transaction(2, 0, [Insert("F", target_y, 2)])
        builder.add(base)
        builder.add(revision, antecedents=[base.tid])
        builder.add(rival)
        # revision's extension (base + revision) and rival's conflict at
        # the mouse/prot9 target key, so both defer; base rides in
        # revision's extension but is not applied yet.
        r1 = reconciler.reconcile(builder.batch(1, [(revision, 1), (rival, 1)]))
        assert set(r1.deferred) == {revision.tid, rival.tid}
        cached = reconciler.cache.lookup(
            revision.tid, state.applied_version, state.applied
        )
        assert cached is not None
        assert base.tid in cached.members
        # base becomes applied (e.g. through another accepted chain): the
        # cached closure contains an applied member and must be rebuilt.
        instance.apply_all([Insert("F", MOUSE3, 3)])
        state.record_applied([base.tid])
        assert (
            reconciler.cache.lookup(
                revision.tid, state.applied_version, state.applied
            )
            is None
        )
        reconciler.reconcile(builder.batch(2, []))
        refreshed = reconciler.cache.lookup(
            revision.tid, state.applied_version, state.applied
        )
        assert refreshed is not None
        assert refreshed is not cached
        assert base.tid not in refreshed.members
        # The rebuilt extension equals a fresh computation.
        root = RelevantTransaction(
            transaction=revision,
            priority=1,
            order=builder.graph.order_of(revision.tid),
        )
        fresh = compute_update_extension(
            schema, builder.graph, root, state.applied
        )
        assert refreshed.operations == fresh.operations
        assert refreshed.touched == fresh.touched

    def test_result_reports_cache_stats_even_when_disabled(self, schema):
        reconciler, _instance, _state = make_reconciler(
            schema, 1, caching=False
        )
        builder, a, b = self._conflicting_pair_batchset(schema)
        result = reconciler.reconcile(builder.batch(1, [(a, 1), (b, 1)]))
        assert result.cache_stats is not None
        assert result.cache_stats.reuses == 0


class TestContextFreeShipping:
    """Store-shipped context-free extensions and the shared pair memo."""

    def _store(self):
        from repro.policy.acceptance import TrustPolicy
        from repro.store.memory import MemoryUpdateStore
        from repro.workload.generator import curated_schema

        store = MemoryUpdateStore(curated_schema())
        for pid in (1, 2, 3):
            policy = TrustPolicy()
            for other in (1, 2, 3):
                if other != pid:
                    policy.trust_participant(other, 1)
            store.register_participant(pid, policy)
        return store

    def test_context_free_extension_computed_once(self):
        from repro.model.transactions import Transaction, TransactionId

        store = self._store()
        txn = Transaction(
            TransactionId(1, 0),
            (Insert("F", ("human", "p1", "fn-x"), 1),),
        )
        store.publish(1, [txn])
        batch2 = store.begin_reconciliation(2)
        batch3 = store.begin_reconciliation(3)
        assert batch2.extensions is not None
        assert batch3.extensions is not None
        # Same object for every participant: derived once, shared.
        assert batch2.extensions[txn.tid] is batch3.extensions[txn.tid]
        assert batch2.pair_cache is batch3.pair_cache

    def test_engine_adopts_shipped_extension_without_computing(self, monkeypatch):
        from repro.model.transactions import Transaction, TransactionId

        calls = []
        real = cache_module.compute_update_extension

        def counting(schema_, graph, root, applied):
            calls.append(root.tid)
            return real(schema_, graph, root, applied)

        monkeypatch.setattr(cache_module, "compute_update_extension", counting)

        store = self._store()
        # Attach to a pre-registered participant directly.
        from repro.cdss.participant import Participant
        from repro.policy.acceptance import TrustPolicy

        policy = TrustPolicy()
        policy.trust_participant(1, 1)
        receiver = Participant(2, store, policy, register=False)
        txn = Transaction(
            TransactionId(1, 0),
            (Insert("F", ("human", "p2", "fn-y"), 1),),
        )
        store.publish(1, [txn])
        calls.clear()
        result = receiver.reconcile()
        assert txn.tid in result.accepted
        # The extension came from the store's context-free shipment: the
        # engine computed nothing locally.
        assert calls == []
        assert receiver.reconciler.cache.stats.shipped == 1

    def test_shipped_extension_rejected_when_closure_applied(self):
        from repro.cdss.participant import Participant
        from repro.model.transactions import Transaction, TransactionId
        from repro.policy.acceptance import TrustPolicy

        store = self._store()
        policy = TrustPolicy()
        policy.trust_participant(1, 1)
        receiver = Participant(2, store, policy, register=False)

        base_row = ("human", "p3", "fn-a")
        revised_row = ("human", "p3", "fn-b")
        base = Transaction(TransactionId(1, 0), (Insert("F", base_row, 1),))
        store.publish(1, [base])
        first = receiver.reconcile()
        assert base.tid in first.accepted

        revision = Transaction(
            TransactionId(1, 1), (Modify("F", base_row, revised_row, 1),)
        )
        store.publish(1, [revision])
        second = receiver.reconcile()
        assert revision.tid in second.accepted
        # The context-free extension of the revision includes base, which
        # the receiver already applied — it must have been recomputed
        # locally (shipped counter unchanged from the first adoption).
        assert receiver.instance.contains_row("F", revised_row)
        assert not receiver.instance.contains_row("F", base_row)
