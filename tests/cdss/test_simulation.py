"""Tests for the simulation driver and metrics."""

from __future__ import annotations

import pytest

from repro.cdss import Simulation, SimulationConfig
from repro.instance import MemoryInstance
from repro.metrics import aggregate_timings, divergence_by_key, state_ratio
from repro.model import Insert
from repro.store import MemoryUpdateStore
from repro.workload import WorkloadConfig, curated_schema


class TestStateRatio:
    def test_empty_system(self):
        assert state_ratio({}) == 1.0

    def test_all_agree(self, schema):
        instances = {}
        for pid in (1, 2, 3):
            inst = MemoryInstance(schema)
            inst.apply(Insert("F", ("rat", "p1", "immune"), pid))
            instances[pid] = inst
        assert state_ratio(instances) == 1.0

    def test_total_divergence(self, schema):
        instances = {}
        for pid in (1, 2, 3):
            inst = MemoryInstance(schema)
            inst.apply(Insert("F", ("rat", "p1", f"fn-{pid}"), pid))
            instances[pid] = inst
        assert state_ratio(instances) == 3.0

    def test_absence_counts_as_a_state(self, schema):
        holder = MemoryInstance(schema)
        holder.apply(Insert("F", ("rat", "p1", "immune"), 1))
        empty = MemoryInstance(schema)
        assert state_ratio({1: holder, 2: empty}) == 2.0

    def test_mixed_keys_average(self, schema):
        a = MemoryInstance(schema)
        b = MemoryInstance(schema)
        shared = ("mouse", "p2", "immune")
        a.apply(Insert("F", shared, 1))
        b.apply(Insert("F", shared, 2))
        a.apply(Insert("F", ("rat", "p1", "x"), 1))  # only at a
        # key1: 1 state; key2: 2 states -> mean 1.5
        assert state_ratio({1: a, 2: b}) == pytest.approx(1.5)

    def test_relation_filter(self, xref_schema):
        a = MemoryInstance(xref_schema)
        b = MemoryInstance(xref_schema)
        a.apply(Insert("F", ("rat", "p1", "x"), 1))
        b.apply(Insert("F", ("rat", "p1", "x"), 2))
        a.apply(Insert("Xref", ("rat", "p1", "GO", "a"), 1))
        assert state_ratio({1: a, 2: b}, relation="F") == 1.0
        assert state_ratio({1: a, 2: b}) > 1.0

    def test_divergence_by_key(self, schema):
        a = MemoryInstance(schema)
        b = MemoryInstance(schema)
        a.apply(Insert("F", ("rat", "p1", "x"), 1))
        b.apply(Insert("F", ("rat", "p1", "y"), 2))
        counts = divergence_by_key({1: a, 2: b})
        assert counts[("F", ("rat", "p1"))] == 2


class TestSimulation:
    def test_small_run_produces_sane_report(self):
        config = SimulationConfig(
            participants=4, reconciliation_interval=2, rounds=2
        )
        report = Simulation(config).run()
        assert 1.0 <= report.state_ratio <= 4.0
        assert report.transactions_published == 4 * 2 * 2
        assert report.store_messages > 0
        assert set(report.timings) == {1, 2, 3, 4}
        for agg in report.timings.values():
            assert agg.reconciliations == 2

    def test_deterministic_given_seed(self):
        def run(seed):
            config = SimulationConfig(
                participants=4,
                reconciliation_interval=2,
                rounds=2,
                workload=WorkloadConfig(seed=seed),
            )
            return Simulation(config).run().state_ratio

        assert run(11) == run(11)

    def test_custom_store(self):
        store = MemoryUpdateStore(curated_schema())
        sim = Simulation(
            SimulationConfig(participants=3, reconciliation_interval=1, rounds=1),
            store=store,
        )
        report = sim.run()
        assert sim.cdss.store is store
        assert report.transactions_published == 3

    def test_store_and_factory_mutually_exclusive(self):
        store = MemoryUpdateStore(curated_schema())
        with pytest.raises(ValueError):
            Simulation(
                SimulationConfig(participants=2),
                store=store,
                store_factory=lambda: store,
            )

    def test_report_means(self):
        config = SimulationConfig(
            participants=3, reconciliation_interval=2, rounds=1
        )
        report = Simulation(config).run()
        assert report.mean_total_seconds_per_participant > 0
        assert report.mean_seconds_per_reconciliation > 0
        assert report.mean_store_seconds_per_participant >= 0
        assert (
            report.mean_total_seconds_per_participant
            == pytest.approx(
                report.mean_store_seconds_per_participant
                + report.mean_local_seconds_per_participant
            )
        )


class TestTimingAggregation:
    def test_empty_aggregate(self):
        agg = aggregate_timings([])
        assert agg.reconciliations == 0
        assert agg.mean_total_seconds == 0.0
        assert agg.mean_store_seconds == 0.0
        assert agg.mean_local_seconds == 0.0

    def test_aggregation_math(self):
        from repro.cdss.participant import ReconcileTiming

        timings = [
            ReconcileTiming(1, store_seconds=1.0, local_seconds=0.5, store_messages=10),
            ReconcileTiming(2, store_seconds=3.0, local_seconds=1.5, store_messages=30),
        ]
        agg = aggregate_timings(timings)
        assert agg.reconciliations == 2
        assert agg.total_store_seconds == 4.0
        assert agg.total_local_seconds == 2.0
        assert agg.total_messages == 40
        assert agg.total_seconds == 6.0
        assert agg.mean_store_seconds == 2.0
        assert agg.mean_local_seconds == 1.0
        assert agg.mean_total_seconds == 3.0
