"""Tests for the participant lifecycle over a real update store."""

from __future__ import annotations

import pytest

from repro.cdss import CDSS
from repro.errors import ConfigError, ConstraintViolation
from repro.model import Insert, Modify
from repro.policy import TrustPolicy
from repro.store import MemoryUpdateStore


RAT1 = ("rat", "prot1", "cell-metab")
RAT1_IMMUNE = ("rat", "prot1", "immune")
RAT1_RESP = ("rat", "prot1", "cell-resp")
MOUSE2 = ("mouse", "prot2", "immune")


@pytest.fixture
def cdss(schema):
    return CDSS(MemoryUpdateStore(schema))


class TestLocalEditing:
    def test_execute_applies_locally_and_queues(self, cdss):
        [p1] = cdss.add_mutually_trusting_participants([1])
        txn = p1.execute([Insert("F", RAT1, 1)])
        assert p1.instance.contains_row("F", RAT1)
        assert p1.unpublished == (txn,)
        assert txn.tid.participant == 1

    def test_execute_constraint_violation_rolls_back(self, cdss):
        [p1] = cdss.add_mutually_trusting_participants([1])
        p1.execute([Insert("F", RAT1, 1)])
        with pytest.raises(ConstraintViolation):
            p1.execute([Insert("F", RAT1_IMMUNE, 1)])
        assert len(p1.unpublished) == 1

    def test_sequence_numbers_increase(self, cdss):
        [p1] = cdss.add_mutually_trusting_participants([1])
        t0 = p1.execute([Insert("F", RAT1, 1)])
        t1 = p1.execute([Modify("F", RAT1, RAT1_IMMUNE, 1)])
        assert t1.tid.sequence == t0.tid.sequence + 1


class TestPublishReconcile:
    def test_two_peer_sync(self, cdss):
        p1, p2 = cdss.add_mutually_trusting_participants([1, 2])
        p1.execute([Insert("F", RAT1, 1)])
        p1.publish_and_reconcile()
        result = p2.publish_and_reconcile()
        assert len(result.accepted) == 1
        assert p2.instance.contains_row("F", RAT1)
        assert cdss.state_ratio() == 1.0

    def test_publish_clears_queue(self, cdss):
        [p1] = cdss.add_mutually_trusting_participants([1])
        p1.execute([Insert("F", RAT1, 1)])
        p1.publish()
        assert p1.unpublished == ()

    def test_chain_across_peers(self, cdss):
        p1, p2, p3 = cdss.add_mutually_trusting_participants([1, 2, 3])
        p1.execute([Insert("F", RAT1, 1)])
        p1.publish_and_reconcile()
        p2.publish_and_reconcile()  # p2 imports the insert
        p2.execute([Modify("F", RAT1, RAT1_IMMUNE, 2)])
        p2.publish_and_reconcile()
        p3.publish_and_reconcile()  # p3 imports the whole chain
        assert p3.instance.contains_row("F", RAT1_IMMUNE)
        assert not p3.instance.contains_row("F", RAT1)

    def test_divergence_with_equal_trust(self, cdss):
        p1, p2, p3 = cdss.add_mutually_trusting_participants([1, 2, 3])
        p1.execute([Insert("F", RAT1_IMMUNE, 1)])
        p1.publish_and_reconcile()
        p2.execute([Insert("F", RAT1_RESP, 2)])
        p2.publish_and_reconcile()
        # p2 rejected p1's version (incompatible with its own state);
        # both instances keep their own rows: tolerated disagreement.
        assert p1.instance.contains_row("F", RAT1_IMMUNE)
        assert p2.instance.contains_row("F", RAT1_RESP)
        assert cdss.state_ratio() > 1.0
        # p3 sees both, trusts both equally: defers.
        result = p3.publish_and_reconcile()
        assert len(result.deferred) == 2
        assert len(p3.open_conflicts()) == 1

    def test_timings_recorded(self, cdss):
        p1, p2 = cdss.add_mutually_trusting_participants([1, 2])
        p1.execute([Insert("F", RAT1, 1)])
        p1.publish_and_reconcile()
        p2.publish_and_reconcile()
        assert len(p2.timings) == 1
        timing = p2.timings[0]
        assert timing.store_seconds > 0  # includes simulated latency
        assert timing.local_seconds > 0
        assert timing.store_messages > 0
        assert timing.total_seconds == pytest.approx(
            timing.store_seconds + timing.local_seconds
        )
        assert p2.total_store_seconds() == timing.store_seconds
        assert p2.total_local_seconds() == timing.local_seconds


class TestResolutionThroughParticipant:
    def test_resolve_reports_to_store(self, cdss):
        from repro.core import Resolution

        p1, p2, p3 = cdss.add_mutually_trusting_participants([1, 2, 3])
        p1.execute([Insert("F", RAT1_IMMUNE, 1)])
        p1.publish_and_reconcile()
        p2.execute([Insert("F", RAT1_RESP, 2)])
        p2.publish_and_reconcile()
        p3.publish_and_reconcile()
        [group] = p3.open_conflicts()
        immune_index = next(
            i
            for i, opt in enumerate(group.options)
            if opt.effect == RAT1_IMMUNE
        )
        result = p3.resolve(
            [Resolution(group_id=group.group_id, chosen_option=immune_index)]
        )
        assert p3.instance.contains_row("F", RAT1_IMMUNE)
        assert len(result.accepted) == 1
        assert len(result.rejected) == 1
        assert p3.open_conflicts() == []

        # The store knows: nothing is redelivered on the next reconcile.
        p1.execute([Insert("F", MOUSE2, 1)])
        p1.publish_and_reconcile()
        result2 = p3.publish_and_reconcile()
        assert [str(t) for t in result2.accepted] == ["X1:1"]


class TestCDSS:
    def test_duplicate_participant_rejected(self, cdss):
        # A duplicate id is a caller error (ConfigError), not a store
        # fault (StoreError).
        cdss.add_participant(1, TrustPolicy())
        with pytest.raises(ConfigError):
            cdss.add_participant(1, TrustPolicy())

    def test_lookup_and_len(self, cdss):
        cdss.add_mutually_trusting_participants([1, 2, 3])
        assert len(cdss) == 3
        assert cdss.participant(2).id == 2
        with pytest.raises(ConfigError):
            cdss.participant(9)

    def test_participants_ordered_by_id(self, cdss):
        cdss.add_mutually_trusting_participants([3, 1, 2])
        assert [p.id for p in cdss.participants] == [1, 2, 3]

    def test_schema_property(self, cdss, schema):
        assert cdss.schema is schema
