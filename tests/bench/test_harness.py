"""Unit tests for the benchmark harness (tiny configurations)."""

from __future__ import annotations

import pytest

from repro.bench import (
    fig8_rows,
    fig9_rows,
    fig10_rows,
    fig11_rows,
    fig12_rows,
    format_table,
)


class TestFormatTable:
    def test_alignment_and_title(self):
        table = format_table(
            "My title", ["x", "value"], [(1, 2.0), (10, 3.25)]
        )
        lines = table.splitlines()
        assert lines[0] == "My title"
        assert "x" in lines[1] and "value" in lines[1]
        assert set(lines[2].replace(" ", "")) == {"-"}
        assert "3.2500" in lines[4]

    def test_handles_strings_and_ints(self):
        table = format_table("t", ["a", "b"], [("central", 7)])
        assert "central" in table
        assert "7" in table


class TestFigureFunctionsSmall:
    """Each figure function runs on tiny configs and returns sane rows."""

    def test_fig8_rows(self):
        rows = fig8_rows(
            sizes=(1, 2), updates_between_recons=2, participants=3, rounds=1
        )
        assert [size for size, _r in rows] == [1, 2]
        for _size, ratio in rows:
            assert 1.0 <= ratio <= 3.0

    def test_fig9_rows(self):
        rows = fig9_rows(intervals=(1, 2), participants=3, transactions_per_peer=4)
        assert [interval for interval, _r in rows] == [1, 2]
        for _interval, ratio in rows:
            assert 1.0 <= ratio <= 3.0

    def test_fig10_rows(self):
        rows = fig10_rows(
            intervals=(2,),
            stores=("central", "distributed"),
            participants=3,
            transactions_per_peer=4,
        )
        assert len(rows) == 2
        for _interval, store, store_s, local_s, total_s in rows:
            assert store in ("central", "distributed")
            assert total_s == pytest.approx(store_s + local_s)
            assert total_s > 0

    def test_fig11_rows(self):
        rows = fig11_rows(peer_counts=(2, 3), interval=2, rounds=1)
        assert [peers for peers, _r in rows] == [2, 3]
        for peers, ratio in rows:
            assert 1.0 <= ratio <= peers

    def test_fig12_rows(self):
        rows = fig12_rows(
            peer_counts=(3,), stores=("central",), interval=2, rounds=1
        )
        [(peers, store, store_s, local_s, total_s)] = rows
        assert peers == 3 and store == "central"
        assert total_s == pytest.approx(store_s + local_s)


class TestRegressionGate:
    """The multi-benchmark CI gate (benchmarks/check_regression.py)."""

    def _write(self, path, point):
        import json

        path.write_text(json.dumps(point))
        return path

    def _baseline(self, tmp_path, speedups):
        return self._write(
            tmp_path / "baseline.json",
            {
                "schema_version": 2,
                "benchmarks": {
                    name: {"benchmark": name, "speedup": speedup}
                    for name, speedup in speedups.items()
                },
            },
        )

    def test_all_points_within_threshold_pass(self, tmp_path):
        from benchmarks.check_regression import main

        baseline = self._baseline(
            tmp_path, {"engine_reconciliation": 4.0, "dht_network_centric": 3.0}
        )
        engine = self._write(
            tmp_path / "e.json",
            {"benchmark": "engine_reconciliation", "speedup": 3.9},
        )
        dht = self._write(
            tmp_path / "d.json",
            {"benchmark": "dht_network_centric", "speedup": 2.8},
        )
        assert main([str(engine), str(dht), "--baseline", str(baseline)]) == 0

    def test_any_regressed_point_fails(self, tmp_path):
        from benchmarks.check_regression import main

        baseline = self._baseline(
            tmp_path, {"engine_reconciliation": 4.0, "dht_network_centric": 3.0}
        )
        engine = self._write(
            tmp_path / "e.json",
            {"benchmark": "engine_reconciliation", "speedup": 3.9},
        )
        dht = self._write(
            tmp_path / "d.json",
            {"benchmark": "dht_network_centric", "speedup": 2.0},
        )
        assert main([str(engine), str(dht), "--baseline", str(baseline)]) == 1

    def test_budgeted_metrics_within_ceiling_pass(self, tmp_path):
        from benchmarks.check_regression import main

        baseline = self._write(
            tmp_path / "baseline.json",
            {
                "schema_version": 3,
                "benchmarks": {
                    "dht_network_centric": {
                        "benchmark": "dht_network_centric",
                        "speedup": 2.9,
                        "budgets": {"message_ratio": 1.8, "byte_ratio": 1.5},
                    }
                },
            },
        )
        fresh = self._write(
            tmp_path / "d.json",
            {
                "benchmark": "dht_network_centric",
                "speedup": 3.5,
                "message_ratio": 1.7,
                "byte_ratio": 1.3,
            },
        )
        assert main([str(fresh), "--baseline", str(baseline)]) == 0

    def test_budget_overrun_fails_even_with_good_speedup(self, tmp_path):
        from benchmarks.check_regression import main

        baseline = self._write(
            tmp_path / "baseline.json",
            {
                "schema_version": 3,
                "benchmarks": {
                    "dht_network_centric": {
                        "benchmark": "dht_network_centric",
                        "speedup": 2.9,
                        "budgets": {"message_ratio": 1.8},
                    }
                },
            },
        )
        fresh = self._write(
            tmp_path / "d.json",
            {
                "benchmark": "dht_network_centric",
                "speedup": 5.0,
                "message_ratio": 2.4,
            },
        )
        assert main([str(fresh), "--baseline", str(baseline)]) == 1

    def test_missing_budgeted_metric_fails(self, tmp_path):
        from benchmarks.check_regression import main

        baseline = self._write(
            tmp_path / "baseline.json",
            {
                "schema_version": 3,
                "benchmarks": {
                    "dht_network_centric": {
                        "benchmark": "dht_network_centric",
                        "speedup": 2.9,
                        "budgets": {"byte_ratio": 1.5},
                    }
                },
            },
        )
        fresh = self._write(
            tmp_path / "d.json",
            {"benchmark": "dht_network_centric", "speedup": 3.5},
        )
        assert main([str(fresh), "--baseline", str(baseline)]) == 1

    def test_legacy_flat_baseline_still_understood(self, tmp_path):
        from benchmarks.check_regression import main

        baseline = self._write(
            tmp_path / "baseline.json",
            {"benchmark": "engine_reconciliation", "speedup": 4.0},
        )
        fresh = self._write(
            tmp_path / "e.json",
            {"benchmark": "engine_reconciliation", "speedup": 4.1},
        )
        assert main([str(fresh), "--baseline", str(baseline)]) == 0

    def test_unknown_benchmark_name_is_an_error(self, tmp_path):
        import pytest as _pytest

        from benchmarks.check_regression import main

        baseline = self._baseline(tmp_path, {"engine_reconciliation": 4.0})
        fresh = self._write(
            tmp_path / "x.json", {"benchmark": "mystery", "speedup": 1.0}
        )
        with _pytest.raises(SystemExit):
            main([str(fresh), "--baseline", str(baseline)])
