"""The documentation gate, run as part of tier-1.

Imports the checks from ``tools/check_docs.py`` (stdlib-only) so that a
missing public docstring, a broken relative link in the checked markdown
files, or a docs snippet quoting a CLI flag that does not exist fails
the ordinary test suite — not just the dedicated CI docs job.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO / "tools"))

import check_docs  # noqa: E402


def test_docstring_coverage():
    assert check_docs.check_docstrings() == []


def test_markdown_links_resolve():
    assert check_docs.check_links() == []


def test_cli_snippets_are_honest():
    assert check_docs.check_cli_snippets() == []


def test_gate_runs_as_a_script():
    completed = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_docs.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
    assert "all clean" in completed.stdout
