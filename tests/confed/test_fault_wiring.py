"""Confederation-side fault wiring (PR 6).

The simnet injector executes message faults; everything lifecycle-shaped
— crashes, recoveries, restarts — is owned by
:class:`~repro.confed.faults.FaultController`, which the confederation
ticks between schedule steps.  These tests pin the wiring: the config
carries (and round-trips) the plan, ``open()`` refuses plans the store
cannot suffer, the controller fires in epoch/declaration order, and the
``fault``/``retry``/``recovery`` events land in ``report().faults``.
"""

from __future__ import annotations

import json

import pytest

from repro.confed import Confederation, ConfederationConfig, FaultController
from repro.confed.hooks import HookBus
from repro.errors import ConfigError
from repro.metrics import FaultCollector
from repro.net import FaultPlan, HostCrash, MessageFault, ParticipantRestart
from repro.workload import WorkloadConfig


def plan_with_everything():
    return FaultPlan(
        seed=3,
        crashes=(HostCrash("host:1", at_epoch=3, recover_at_epoch=6),),
        messages=(MessageFault("txn_data", "drop", probability=0.1, times=2),),
        restarts=(ParticipantRestart(participant=2, at_epoch=5),),
    )


class TestConfigCarriesThePlan:
    def test_faults_round_trip_through_json(self):
        cfg = ConfederationConfig(
            peers=(1, 2), faults=plan_with_everything()
        )
        wire = json.loads(json.dumps(cfg.to_dict()))
        restored = ConfederationConfig.from_dict(wire)
        assert restored == cfg
        assert restored.faults == plan_with_everything()

    def test_no_plan_serialises_as_none(self):
        assert ConfederationConfig().to_dict()["faults"] is None
        assert ConfederationConfig.from_dict({"faults": None}).faults is None

    def test_validate_rejects_unknown_restart_participant(self):
        cfg = ConfederationConfig(
            peers=(1, 2),
            faults=FaultPlan(
                restarts=(ParticipantRestart(participant=9, at_epoch=2),)
            ),
        )
        with pytest.raises(ConfigError, match="participant 9"):
            cfg.validate()

    def test_validate_propagates_plan_errors(self):
        cfg = ConfederationConfig(
            faults=FaultPlan(
                messages=(MessageFault("txn_data", probability=2.0),)
            )
        )
        with pytest.raises(ConfigError, match="probability"):
            cfg.validate()


class TestOpenRefusesImpossiblePlans:
    def test_message_faults_need_a_networked_store(self):
        cfg = ConfederationConfig(
            store="memory",
            peers=(1, 2),
            faults=FaultPlan(messages=(MessageFault("txn_data"),)),
        )
        with pytest.raises(ConfigError, match="simulated network"):
            Confederation(cfg).open()

    def test_crashes_need_the_fail_host_surface(self):
        cfg = ConfederationConfig(
            store="central",
            peers=(1, 2),
            faults=FaultPlan(crashes=(HostCrash("host:1", at_epoch=1),)),
        )
        with pytest.raises(ConfigError, match="fail_host"):
            Confederation(cfg).open()

    def test_empty_plan_is_inert_on_any_store(self):
        cfg = ConfederationConfig(
            store="memory", peers=(1, 2), faults=FaultPlan(seed=5)
        )
        with Confederation(cfg) as confed:
            assert confed.report().faults.total_injected == 0


class _StubStore:
    def __init__(self):
        self.epoch = 0
        self.calls = []

    def current_epoch(self):
        return self.epoch

    def fail_host(self, host):
        self.calls.append(("fail", host))

    def recover_host(self, host):
        self.calls.append(("recover", host))


class _StubConfederation:
    def __init__(self):
        self.store = _StubStore()
        self.hooks = HookBus()
        self.restored = []

    def restore(self, participant):
        self.restored.append(participant)


class TestFaultController:
    def test_pending_is_sorted_by_epoch_then_declaration(self):
        controller = FaultController(plan_with_everything())
        assert controller.pending == (
            (3, "crash", "host:1"),
            (5, "restart", 2),
            (6, "recover", "host:1"),
        )

    def test_tick_fires_only_reached_epochs(self):
        confed = _StubConfederation()
        controller = FaultController(plan_with_everything())
        controller.tick(confed)  # epoch 0: nothing due
        assert confed.store.calls == []
        confed.store.epoch = 5
        controller.tick(confed)
        assert confed.store.calls == [("fail", "host:1")]
        assert confed.restored == [2]
        assert controller.pending == ((6, "recover", "host:1"),)
        confed.store.epoch = 6
        controller.tick(confed)
        assert confed.store.calls[-1] == ("recover", "host:1")
        assert controller.pending == ()

    def test_restart_emits_a_recovery_event(self):
        confed = _StubConfederation()
        collector = FaultCollector().attach(confed.hooks)
        confed.store.epoch = 5
        FaultController(
            FaultPlan(restarts=(ParticipantRestart(2, at_epoch=1),))
        ).tick(confed)
        assert collector.summary.recoveries == 1
        assert collector.events == [
            ("recovery", {"kind": "participant", "participant": 2})
        ]


class TestReportSurface:
    def run_report(self, faults):
        cfg = ConfederationConfig(
            store="dht",
            store_options={"hosts": 4, "replication_factor": 2},
            peers=(1, 2, 3),
            reconciliation_interval=2,
            rounds=2,
            workload=WorkloadConfig(transaction_size=1, seed=13),
            faults=faults,
        )
        with Confederation(cfg) as confed:
            confed.run()
            return confed.report()

    def test_report_counts_injections_and_recoveries(self):
        report = self.run_report(
            FaultPlan(
                seed=2,
                crashes=(HostCrash("host:1", at_epoch=2, recover_at_epoch=4),),
            )
        )
        assert report.faults.injected == {"crash": 1}
        assert report.faults.recoveries == 1
        assert report.faults.total_injected == 1

    def test_report_snapshot_is_independent(self):
        report = self.run_report(FaultPlan(seed=2))
        report.faults.injected["crash"] = 99
        assert self.run_report(FaultPlan(seed=2)).faults.injected == {}
