"""The event hook bus: subscription rules, ordering, and delivery."""

from __future__ import annotations

import pytest

from repro.confed import Confederation, ConfederationConfig, HookBus
from repro.core import Decision
from repro.errors import ConfigError
from repro.model import Insert, Modify


class TestBusMechanics:
    def test_unknown_event_rejected(self):
        with pytest.raises(ConfigError, match="unknown hook event"):
            HookBus().subscribe("decisions", lambda **_: None)

    def test_handlers_run_in_subscription_order(self):
        bus = HookBus()
        calls = []
        bus.on_publish(lambda **_: calls.append("first"))
        bus.on_publish(lambda **_: calls.append("second"))
        bus.emit("publish", participant=1, epoch=1, transactions=())
        assert calls == ["first", "second"]

    def test_unsubscribe_stops_delivery(self):
        bus = HookBus()
        calls = []
        handler = bus.on_decision(lambda **_: calls.append(1))
        bus.unsubscribe("decision", handler)
        bus.emit("decision", participant=1, recno=1, tid=None, decision=None)
        assert calls == []
        assert not bus.has("decision")

    def test_handler_exceptions_propagate(self):
        bus = HookBus()

        def boom(**_):
            raise RuntimeError("handler failed")

        bus.on_epoch_start(boom)
        with pytest.raises(RuntimeError, match="handler failed"):
            bus.emit("epoch_start", participant=1, recno=1)


@pytest.fixture
def three_peers(schema):
    confed = Confederation.from_config(
        ConfederationConfig(store="memory", peers=(1, 2, 3)), schema=schema
    )
    yield confed
    confed.close()


RAT_A = ("rat", "prot1", "immune")
RAT_B = ("rat", "prot1", "cell-resp")


class TestLifecycleDelivery:
    """Hook ordering and payloads over a real 3-peer reconcile."""

    def test_event_order_and_payloads(self, three_peers):
        events = []
        bus = three_peers.hooks
        bus.on_publish(
            lambda participant, epoch, transactions, **_: events.append(
                ("publish", participant, epoch, len(transactions))
            )
        )
        bus.on_epoch_start(
            lambda participant, recno, **_: events.append(
                ("epoch_start", participant, recno)
            )
        )
        bus.on_decision(
            lambda participant, tid, decision, **_: events.append(
                ("decision", participant, str(tid), decision)
            )
        )
        bus.on_conflict(
            lambda participant, group, **_: events.append(
                ("conflict", participant, len(group.options))
            )
        )
        bus.on_cache_stats(
            lambda participant, stats, **_: events.append(
                ("cache_stats", participant, stats is not None)
            )
        )
        bus.on_reconcile(
            lambda participant, result, timing, **_: events.append(
                ("reconcile", participant, result.recno)
            )
        )

        p1, p2, p3 = three_peers.participants
        p1.execute([Insert("F", RAT_A, 1)])
        p1.publish_and_reconcile()
        p2.execute([Insert("F", RAT_B, 2)])
        p2.publish_and_reconcile()
        p3.publish_and_reconcile()

        # p1's turn: publish precedes its epoch_start, which precedes its
        # reconcile completion.
        assert events[0] == ("publish", 1, 1, 1)
        assert events[1] == ("epoch_start", 1, 1)
        kinds_p1 = [e[0] for e in events if e[1] == 1]
        assert kinds_p1.index("publish") < kinds_p1.index("epoch_start")
        assert kinds_p1.index("epoch_start") < kinds_p1.index("reconcile")

        # p2 rejects p1's conflicting chain: exactly one decision event,
        # ordered between its epoch_start and its cache_stats.
        p2_events = [e for e in events if e[1] == 2]
        p2_kinds = [e[0] for e in p2_events]
        assert p2_kinds == [
            "publish",
            "epoch_start",
            "decision",
            "cache_stats",
            "reconcile",
        ]
        decision_event = next(e for e in p2_events if e[0] == "decision")
        assert decision_event[3] is Decision.REJECT

        # p3 trusts both equally: both roots deferred into one conflict
        # group; the conflict event lands between decisions and
        # cache_stats.
        p3_kinds = [e[0] for e in events if e[1] == 3]
        assert p3_kinds == [
            "publish",
            "epoch_start",
            "decision",
            "decision",
            "conflict",
            "cache_stats",
            "reconcile",
        ]
        p3_decisions = [
            e for e in events if e[1] == 3 and e[0] == "decision"
        ]
        assert all(e[3] is Decision.DEFER for e in p3_decisions)
        # Decision events arrive in publish order.
        assert [e[2] for e in p3_decisions] == ["X1:0", "X2:0"]

    def test_decisions_delivered_match_result(self, three_peers):
        seen = {}
        three_peers.hooks.on_decision(
            lambda tid, decision, **_: seen.__setitem__(str(tid), decision)
        )
        p1, p2, _p3 = three_peers.participants
        p1.execute([Insert("F", RAT_A, 1)])
        p1.execute([Modify("F", RAT_A, ("rat", "prot1", "signal"), 1)])
        p1.publish_and_reconcile()
        result = p2.publish_and_reconcile()
        assert seen == {str(t): d for t, d in result.decisions.items()}

    def test_quiet_bus_costs_nothing_visible(self, three_peers):
        # No subscribers: the same run just works (emit early-returns).
        p1, _p2, _p3 = three_peers.participants
        p1.execute([Insert("F", RAT_A, 1)])
        result = p1.publish_and_reconcile()
        assert result.recno == 1
