"""The pluggable epoch schedulers and the session/transport split."""

from __future__ import annotations

import pytest

from repro.confed import (
    AsyncScheduler,
    Confederation,
    ConfederationConfig,
    HookBus,
    SerialScheduler,
    ThreadedScheduler,
    create_scheduler,
)
from repro.core.session import ReconcileSession
from repro.errors import ConfigError
from repro.workload import WorkloadConfig


def _config(**overrides):
    base = dict(
        peers=(1, 2, 3, 4),
        reconciliation_interval=2,
        rounds=2,
        final_reconcile=True,
        workload=WorkloadConfig(transaction_size=1, seed=23),
    )
    base.update(overrides)
    return ConfederationConfig(**base)


def _decision_log(config):
    log = []
    hooks = HookBus()
    hooks.on_decision(
        lambda **kw: log.append(
            (kw["participant"], kw["recno"], str(kw["tid"]), str(kw["decision"]))
        )
    )
    with Confederation(config, hooks=hooks) as confed:
        report = confed.run()
        snapshots = {
            p.id: p.instance.snapshot() for p in confed.participants
        }
    # Sort by participant: the threaded schedule interleaves emission
    # across workers, but each participant's own stream is ordered.
    return sorted(log), snapshots, report


def _raw_decision_log(config):
    """Like ``_decision_log`` but keeps the global emission order."""
    log = []
    hooks = HookBus()
    hooks.on_decision(
        lambda **kw: log.append(
            (kw["participant"], kw["recno"], str(kw["tid"]), str(kw["decision"]))
        )
    )
    with Confederation(config, hooks=hooks) as confed:
        confed.run()
    return log


def _per_participant(log):
    """Group a decision log per participant, preserving each stream."""
    streams = {}
    for participant, *rest in log:
        streams.setdefault(participant, []).append(tuple(rest))
    return streams


class TestSelection:
    def test_serial_is_the_default(self):
        assert ConfederationConfig().schedule_mode == "serial"
        assert isinstance(create_scheduler(ConfederationConfig()), SerialScheduler)

    def test_threaded_selected_by_mode(self):
        cfg = ConfederationConfig(schedule_mode="threaded", schedule_workers=3)
        assert isinstance(create_scheduler(cfg), ThreadedScheduler)

    def test_async_selected_by_mode(self):
        cfg = ConfederationConfig(schedule_mode="async", schedule_workers=3)
        scheduler = create_scheduler(cfg)
        assert isinstance(scheduler, AsyncScheduler)
        assert scheduler._workers == 3

    def test_unknown_mode_rejected_by_validation(self):
        with pytest.raises(ConfigError, match="unknown schedule mode"):
            ConfederationConfig(schedule_mode="quantum").validate()

    def test_mode_registry_matches_config_modes(self):
        # SCHEDULE_MODES (what validate() accepts) and SCHEDULERS (what
        # create_scheduler can build) must never drift apart.
        from repro.confed import SCHEDULE_MODES
        from repro.confed.scheduler import SCHEDULERS

        assert set(SCHEDULERS) == set(SCHEDULE_MODES)

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ConfigError, match="schedule_workers"):
            ConfederationConfig(schedule_workers=0).validate()

    @pytest.mark.parametrize("workers", [0, -3])
    def test_direct_construction_rejects_non_positive_workers(self, workers):
        # ThreadedScheduler(workers=0) used to silently fall back to the
        # default pool sizing through `self._workers or ...`; it is now
        # a hard error at construction, matching the config validation.
        with pytest.raises(ConfigError, match="at least one worker"):
            ThreadedScheduler(workers=workers)

    @pytest.mark.parametrize("workers", [0, -3])
    def test_async_construction_rejects_non_positive_workers(self, workers):
        # schedule_workers=0 is a ConfigError for async exactly as for
        # threaded — never a silent fall-back to the default sizing.
        with pytest.raises(ConfigError, match="at least one in-flight"):
            AsyncScheduler(workers=workers)

    def test_async_bad_worker_count_rejected_by_validation(self):
        with pytest.raises(ConfigError, match="schedule_workers"):
            ConfederationConfig(
                schedule_mode="async", schedule_workers=0
            ).validate()

    def test_explicit_worker_count_is_honoured(self):
        assert ThreadedScheduler(workers=2)._workers == 2
        assert ThreadedScheduler()._workers is None

    @pytest.mark.parametrize("mode", ["threaded", "async"])
    def test_schedule_keys_round_trip(self, mode):
        cfg = ConfederationConfig(schedule_mode=mode, schedule_workers=8)
        wire = cfg.to_dict()
        assert wire["schedule_mode"] == mode
        assert wire["schedule_workers"] == 8
        assert ConfederationConfig.from_dict(wire) == cfg


class TestThreadedSchedule:
    def test_threaded_run_completes_and_counts(self):
        with Confederation(_config(schedule_mode="threaded")) as confed:
            report = confed.run()
        assert report.transactions_published == 4 * 2 * 2
        assert set(report.timings) == {1, 2, 3, 4}
        for agg in report.timings.values():
            assert agg.reconciliations == 3  # 2 rounds + final pass

    def test_threaded_decisions_are_reproducible(self):
        first = _decision_log(_config(schedule_mode="threaded"))
        second = _decision_log(_config(schedule_mode="threaded"))
        assert first[0] == second[0]  # decision log
        assert first[1] == second[1]  # replica snapshots
        assert first[2].state_ratio == second[2].state_ratio

    def test_threaded_converges_like_serial_after_full_exchange(self):
        # The two modes interleave differently (and may decide
        # differently mid-run), but with a final reconcile pass every
        # replica sees every accepted update under both schedules.
        serial = _decision_log(_config(schedule_mode="serial"))
        threaded = _decision_log(_config(schedule_mode="threaded"))
        assert serial[2].transactions_published == threaded[2].transactions_published

    def test_threaded_works_against_the_dht_store(self):
        config = _config(
            store="dht",
            store_options={"hosts": 4},
            schedule_mode="threaded",
            rounds=1,
        )
        first = _decision_log(config)
        second = _decision_log(config)
        assert first[0] == second[0]
        assert first[1] == second[1]


class TestAsyncSchedule:
    def test_async_run_completes_and_counts(self):
        with Confederation(_config(schedule_mode="async")) as confed:
            report = confed.run()
        assert report.transactions_published == 4 * 2 * 2
        assert set(report.timings) == {1, 2, 3, 4}
        for agg in report.timings.values():
            assert agg.reconciliations == 3  # 2 rounds + final pass
        assert report.scheduler == "async"

    def test_async_global_stream_is_reproducible(self):
        # Stronger than the threaded pin: one event loop interleaves
        # whole synchronous segments in deterministic task order, so
        # even the *global* decision stream reproduces byte-for-byte.
        config = _config(schedule_mode="async")
        assert _raw_decision_log(config) == _raw_decision_log(config)

    def test_async_matches_threaded_per_participant(self):
        # Same publish order, same RNG substreams, same three-phase
        # rounds: each participant's decision stream is byte-identical
        # between the threaded and async schedules.
        threaded = _raw_decision_log(_config(schedule_mode="threaded"))
        async_log = _raw_decision_log(_config(schedule_mode="async"))
        assert _per_participant(async_log) == _per_participant(threaded)

    def test_async_replicas_and_report_match_threaded(self):
        threaded = _decision_log(_config(schedule_mode="threaded"))
        async_run = _decision_log(_config(schedule_mode="async"))
        assert async_run[0] == threaded[0]  # canonicalised decision log
        assert async_run[1] == threaded[1]  # replica snapshots
        assert async_run[2].state_ratio == threaded[2].state_ratio

    def test_async_works_against_the_dht_store(self):
        config = _config(
            store="dht",
            store_options={"hosts": 4},
            schedule_mode="async",
            rounds=1,
        )
        first = _decision_log(config)
        second = _decision_log(config)
        assert first[0] == second[0]
        assert first[1] == second[1]

    def test_async_honours_the_in_flight_cap(self):
        config = _config(schedule_mode="async", schedule_workers=1)
        capped = _raw_decision_log(config)
        uncapped = _raw_decision_log(_config(schedule_mode="async"))
        assert _per_participant(capped) == _per_participant(uncapped)

    def test_async_restores_the_blocking_clock_after_the_run(self):
        from repro.net.clock import BlockingLatencyClock

        with Confederation(_config(schedule_mode="async")) as confed:
            confed.run()
            assert isinstance(confed.store.clock, BlockingLatencyClock)


class TestFailFast:
    def test_edit_phase_failure_aborts_before_the_publish_barrier(self):
        # A worker exception in the parallel edit phase must abort the
        # round before anything publishes — a half-edited round leaking
        # through the barrier would feed every peer inconsistent epochs
        # — and the raised error must name the failing participant.
        from repro.errors import SchedulerError

        with Confederation(_config(schedule_mode="threaded")) as confed:
            broken = confed.participant(3)

            def explode(updates):
                raise RuntimeError("disk on fire")

            broken.execute = explode
            with pytest.raises(
                SchedulerError, match="edit phase failed for participant 3"
            ) as excinfo:
                confed.run()
            assert isinstance(excinfo.value.__cause__, RuntimeError)
            # Nothing published: the barrier never ran.
            assert confed.store.current_epoch() == 0
            assert confed.report().transactions_published == 0

    def test_reconcile_phase_failure_names_the_participant(self):
        from repro.errors import SchedulerError

        with Confederation(_config(schedule_mode="threaded")) as confed:
            broken = confed.participant(2)

            def explode():
                raise RuntimeError("session crashed")

            broken.reconcile = explode
            with pytest.raises(
                SchedulerError,
                match="reconcile phase failed for participant 2",
            ):
                confed.run()

    def test_async_edit_failure_aborts_before_the_publish_barrier(self):
        from repro.errors import SchedulerError

        with Confederation(_config(schedule_mode="async")) as confed:
            broken = confed.participant(3)

            def explode(updates):
                raise RuntimeError("disk on fire")

            broken.execute = explode
            with pytest.raises(
                SchedulerError, match="edit phase failed for participant 3"
            ) as excinfo:
                confed.run()
            assert isinstance(excinfo.value.__cause__, RuntimeError)
            assert confed.store.current_epoch() == 0
            assert confed.report().transactions_published == 0

    def test_async_reconcile_failure_names_the_participant(self):
        from repro.errors import SchedulerError

        with Confederation(_config(schedule_mode="async")) as confed:
            broken = confed.participant(2)

            def explode():
                raise RuntimeError("session crashed")

            broken.reconcile = explode
            with pytest.raises(
                SchedulerError,
                match="reconcile phase failed for participant 2",
            ):
                confed.run()


class TestEpochEndHook:
    def test_epoch_end_emitted_per_schedule_step(self):
        for mode in ("serial", "threaded", "async"):
            events = []
            hooks = HookBus()
            hooks.on_epoch_end(lambda **kw: events.append(kw))
            with Confederation(
                _config(schedule_mode=mode), hooks=hooks
            ) as confed:
                report = confed.run()
            assert len(events) == 2 * 4  # rounds x peers
            assert {e["participant"] for e in events} == {1, 2, 3, 4}
            assert {e["round"] for e in events} == {0, 1}
            totals = [e["total_published"] for e in events]
            assert totals == sorted(totals)
            assert totals[-1] == report.transactions_published
            assert sum(e["published"] for e in events) == totals[-1]


class TestSessionLayer:
    def test_participant_reconcile_routes_through_the_session(self):
        with Confederation(_config(rounds=1)) as confed:
            participant = confed.participant(1)
            assert isinstance(participant.session, ReconcileSession)
            confed.run()

    def test_session_is_transport_free(self):
        """A session consumes hand-built batches with no store at all."""
        from repro.core.engine import Reconciler
        from repro.core.extensions import ReconciliationBatch
        from repro.core.state import ParticipantState
        from repro.instance.memory import MemoryInstance
        from repro.workload import curated_schema

        schema = curated_schema()
        reconciler = Reconciler(schema, MemoryInstance(schema), ParticipantState(7))
        session = ReconcileSession(reconciler)
        outcome = session.run(ReconciliationBatch(recno=3))
        assert outcome.result.recno == 3
        assert outcome.upstream.deferred == []
        assert outcome.local_seconds >= 0.0

    def test_session_upstream_filters_re_deferrals(self):
        """Only newly deferred roots travel upstream."""
        from repro.core.engine import Reconciler
        from repro.core.extensions import (
            ReconciliationBatch,
            RelevantTransaction,
        )
        from repro.core.state import ParticipantState
        from repro.instance.memory import MemoryInstance
        from repro.model import Insert, Transaction, TransactionId
        from repro.workload import curated_schema

        schema = curated_schema()
        state = ParticipantState(7)
        reconciler = Reconciler(schema, MemoryInstance(schema), state)
        session = ReconcileSession(reconciler)

        left = Transaction(
            TransactionId(1, 0), (Insert("F", ("rat", "p1", "fn-a"), 1),)
        )
        right = Transaction(
            TransactionId(2, 0), (Insert("F", ("rat", "p1", "fn-b"), 2),)
        )
        batch = ReconciliationBatch(recno=1)
        for order, txn in enumerate((left, right)):
            batch.graph.add(txn, (), order)
            batch.roots.append(
                RelevantTransaction(transaction=txn, priority=1, order=order)
            )
        outcome = session.run(batch)
        assert sorted(map(str, outcome.upstream.deferred)) == ["X1:0", "X2:0"]

        # Same conflict next epoch: re-deferred locally, silent upstream.
        again = session.run(ReconciliationBatch(recno=2))
        assert sorted(map(str, again.result.deferred)) == ["X1:0", "X2:0"]
        assert again.upstream.deferred == []
