"""The Confederation facade: lifecycle, participants, snapshot/restore."""

from __future__ import annotations

import pytest

from repro.confed import Confederation, ConfederationConfig
from repro.errors import ConfigError
from repro.instance import SqliteInstance
from repro.model import Insert
from repro.policy import TrustPolicy
from repro.store import MemoryUpdateStore
from repro.workload import WorkloadConfig, curated_schema

RAT = ("rat", "prot1", "immune")
MOUSE = ("mouse", "prot2", "immune")


class TestLifecycle:
    def test_from_config_is_open(self, schema):
        confed = Confederation.from_config(
            ConfederationConfig(peers=(1, 2)), schema=schema
        )
        assert len(confed) == 2
        assert isinstance(confed.store, MemoryUpdateStore)

    def test_context_manager_opens_and_closes(self, schema):
        with Confederation(ConfederationConfig(peers=(1,)), schema=schema) as c:
            assert len(c) == 1
        with pytest.raises(ConfigError, match="closed"):
            c.add_participant(2, TrustPolicy())

    def test_double_open_rejected(self, schema):
        confed = Confederation(ConfederationConfig(), schema=schema).open()
        with pytest.raises(ConfigError, match="already open"):
            confed.open()

    def test_not_open_yet_rejected(self, schema):
        confed = Confederation(ConfederationConfig(peers=(1,)), schema=schema)
        with pytest.raises(ConfigError, match="not open"):
            confed.participant(1)
        with pytest.raises(ConfigError, match="open"):
            confed.store

    def test_close_is_idempotent(self, schema):
        confed = Confederation(ConfederationConfig(), schema=schema).open()
        confed.close()
        confed.close()

    def test_adopted_store_is_not_closed(self, schema):
        class Probe(MemoryUpdateStore):
            closed = False

            def close(self):
                self.closed = True

        store = Probe(schema)
        with Confederation(ConfederationConfig(peers=(1,)), store=store):
            pass
        assert not store.closed

    def test_network_centric_needs_capability(self):
        # Since PR 5 every built-in backend serves store-computed
        # batches, so the gate is exercised with a driver that
        # honestly declares it cannot.
        from repro.store import (
            MemoryUpdateStore,
            StoreCapabilities,
            register_store,
            unregister_store,
        )

        class ClientOnlyStore(MemoryUpdateStore):
            capabilities = StoreCapabilities(
                ships_context_free=True, shared_pair_memo=True
            )

        register_store(
            "client-only-test",
            lambda schema, **_: ClientOnlyStore(schema),
            ClientOnlyStore.capabilities,
        )
        try:
            config = ConfederationConfig(
                store="client-only-test",
                network_centric="store",
                peers=(1,),
            )
            with pytest.raises(ConfigError, match="network_centric_batches"):
                Confederation(config).open()
        finally:
            unregister_store("client-only-test")


class TestParticipants:
    def test_duplicate_participant_is_config_error(self, schema):
        with Confederation(ConfederationConfig(), schema=schema) as confed:
            confed.add_participant(1, TrustPolicy())
            with pytest.raises(ConfigError, match="already exists"):
                confed.add_participant(1, TrustPolicy())

    def test_unknown_participant_is_config_error(self, schema):
        with Confederation(ConfederationConfig(), schema=schema) as confed:
            with pytest.raises(ConfigError, match="no participant"):
                confed.participant(7)

    def test_declarative_trust_topology(self, schema):
        config = ConfederationConfig(
            peers=(1, 2), trust={1: {2: 4}, 2: {}}
        )
        with Confederation(config, schema=schema) as confed:
            p2 = confed.participant(2)
            p2.execute([Insert("F", RAT, 2)])
            p2.publish_and_reconcile()
            result = confed.participant(1).publish_and_reconcile()
            # p1 trusts p2 at priority 4, so the insert lands...
            assert [str(t) for t in result.accepted] == ["X2:0"]
            confed.participant(1).execute([Insert("F", MOUSE, 1)])
            confed.participant(1).publish_and_reconcile()
            # ...while p2 trusts nobody: p1's insert is never delivered.
            result = p2.publish_and_reconcile()
            assert result.decisions == {}

    def test_sqlite_instance_backend(self, schema):
        config = ConfederationConfig(peers=(1,), instance_backend="sqlite")
        with Confederation(config, schema=schema) as confed:
            participant = confed.participant(1)
            assert isinstance(participant.instance, SqliteInstance)
            participant.execute([Insert("F", RAT, 1)])
            assert participant.instance.contains_row("F", RAT)


class TestSnapshotRestore:
    def test_snapshot_reflects_store_decisions(self, schema):
        with Confederation(
            ConfederationConfig(peers=(1, 2)), schema=schema
        ) as confed:
            p1 = confed.participant(1)
            p1.execute([Insert("F", RAT, 1)])
            p1.publish_and_reconcile()
            confed.participant(2).publish_and_reconcile()
            snap = confed.snapshot()
            assert [str(t) for t in snap[1].applied] == ["X1:0"]
            assert [str(t) for t in snap[2].applied] == ["X1:0"]
            assert snap[2].rejected == ()
            assert snap[2].last_recno >= 1

    def test_restore_rebuilds_equivalent_participants(self, schema):
        with Confederation(
            ConfederationConfig(peers=(1, 2, 3)), schema=schema
        ) as confed:
            p1, p2, p3 = confed.participants
            p1.execute([Insert("F", RAT, 1)])
            p1.publish_and_reconcile()
            p2.execute([Insert("F", ("rat", "prot1", "cell-resp"), 2)])
            p2.publish_and_reconcile()
            p3.publish_and_reconcile()  # defers the conflict
            before = {
                pid: p.instance.snapshot() for pid, p in enumerate(
                    confed.participants, start=1
                )
            }
            deferred_before = set(p3.state.deferred)
            restored = confed.restore()
            assert set(restored) == {1, 2, 3}
            for pid, participant in restored.items():
                assert confed.participant(pid) is participant
                assert participant.instance.snapshot() == before[pid]
            assert set(confed.participant(3).state.deferred) == deferred_before

    def test_restore_preserves_instance_type(self, schema):
        with Confederation(ConfederationConfig(), schema=schema) as confed:
            p1 = confed.add_participant(
                1, TrustPolicy(), instance=SqliteInstance(schema)
            )
            p1.execute([Insert("F", RAT, 1)])
            p1.publish_and_reconcile()
            restored = confed.restore(1)
            # An explicitly supplied sqlite replica must not silently
            # downgrade to the config's default backend.
            assert isinstance(restored.instance, SqliteInstance)
            assert restored.instance.contains_row("F", RAT)

    def test_restored_participants_stay_on_the_bus(self, schema):
        with Confederation(
            ConfederationConfig(peers=(1, 2)), schema=schema
        ) as confed:
            p1 = confed.participant(1)
            p1.execute([Insert("F", RAT, 1)])
            p1.publish_and_reconcile()
            restored = confed.restore(2)
            events = []
            confed.hooks.on_reconcile(
                lambda participant, **_: events.append(participant)
            )
            restored.publish_and_reconcile()
            assert events == [2]


class TestRunAndReport:
    def test_run_matches_legacy_simulation(self):
        config = ConfederationConfig(
            peers=(1, 2, 3, 4),
            reconciliation_interval=2,
            rounds=2,
            workload=WorkloadConfig(seed=11),
        )
        with Confederation(config) as confed:
            report = confed.run()
        assert report.transactions_published == 4 * 2 * 2
        assert set(report.timings) == {1, 2, 3, 4}
        for agg in report.timings.values():
            assert agg.reconciliations == 2
        assert report.store_messages > 0
        assert 1.0 <= report.state_ratio <= 4.0
        # The default in-process store has no simulated network: the
        # wire-metric maps are present but empty.
        assert report.kind_counts == {}
        assert report.kind_bytes == {}

    def test_report_wire_metrics_mirror_the_dht_network(self):
        config = ConfederationConfig(
            store="dht",
            store_options={"hosts": 3},
            peers=(1, 2, 3),
            reconciliation_interval=2,
            rounds=1,
            workload=WorkloadConfig(seed=11),
        )
        with Confederation(config) as confed:
            report = confed.run()
            net = confed.store.network
            assert report.kind_counts == net.kind_counts
            assert report.kind_bytes == net.kind_bytes
        assert sum(report.kind_counts.values()) > 0
        # Every kind's byte share sums back to the delivered total.
        assert set(report.kind_bytes) == set(report.kind_counts)

    def test_report_metrics_come_from_the_bus(self):
        config = ConfederationConfig(
            peers=(1, 2), reconciliation_interval=2, rounds=1
        )
        with Confederation(config) as confed:
            report = confed.run()
            # The collectors saw every reconciliation the participants
            # ran...
            for pid, agg in report.timings.items():
                assert agg.reconciliations == len(
                    confed.participant(pid).timings
                )
            # ...and the cache totals equal the participants' cumulative
            # counters (one delta per run, summed).
            cumulative = sum(
                confed.participant(pid).reconciler.cache.stats.hits
                + confed.participant(pid).reconciler.cache.stats.misses
                for pid in (1, 2)
            )
            assert (
                report.cache_stats.hits + report.cache_stats.misses
                == cumulative
            )

    def test_report_cache_stats_is_a_snapshot(self):
        config = ConfederationConfig(
            peers=(1, 2), reconciliation_interval=2, rounds=1
        )
        with Confederation(config) as confed:
            first = confed.run()
            frozen = first.cache_stats.as_dict()
            second = confed.run()
            # The first report must not mutate as the run continues.
            assert first.cache_stats.as_dict() == frozen
            assert first.cache_stats is not second.cache_stats

    def test_default_schema_is_the_evaluation_schema(self):
        with Confederation(ConfederationConfig(peers=(1,))) as confed:
            expected = curated_schema()
            assert [r.name for r in confed.schema] == [
                r.name for r in expected
            ]
