"""ConfederationConfig: round-trip, validation, and error behaviour."""

from __future__ import annotations

import json

import pytest

from repro.confed import Confederation, ConfederationConfig
from repro.errors import ConfigError
from repro.workload import WorkloadConfig


class TestRoundTrip:
    def test_default_config_round_trips(self):
        cfg = ConfederationConfig()
        assert ConfederationConfig.from_dict(cfg.to_dict()) == cfg

    def test_full_config_round_trips(self):
        cfg = ConfederationConfig(
            store="central",
            store_options={"call_overhead_seconds": 0.001},
            instance_backend="sqlite",
            peers=(1, 2, 5),
            trust={1: {2: 3, 5: 1}, 2: {1: 1}},
            trust_priority=2,
            network_centric=True,
            engine_caching=False,
            workload=WorkloadConfig(transaction_size=3, seed=9),
            reconciliation_interval=7,
            rounds=2,
            final_reconcile=True,
        )
        assert ConfederationConfig.from_dict(cfg.to_dict()) == cfg

    def test_round_trip_survives_json(self):
        cfg = ConfederationConfig(
            peers=(1, 2, 3),
            trust={1: {2: 1}, 2: {1: 2}, 3: {1: 1, 2: 1}},
            workload=WorkloadConfig(seed=3),
        )
        wire = json.loads(json.dumps(cfg.to_dict()))
        assert ConfederationConfig.from_dict(wire) == cfg

    def test_peers_normalised_to_tuple(self):
        assert ConfederationConfig(peers=[3, 1]).peers == (3, 1)

    @pytest.mark.parametrize("mode", [False, True, "client", "store"])
    def test_network_centric_mode_round_trips_exactly(self, mode):
        # The named modes ("client"/"store") and their legacy boolean
        # spellings are distinct dict values and must survive the round
        # trip verbatim — a config file saying "store" must not come
        # back as True.
        cfg = ConfederationConfig(network_centric=mode).validate()
        wire = json.loads(json.dumps(cfg.to_dict()))
        assert wire["network_centric"] == mode
        restored = ConfederationConfig.from_dict(wire)
        assert restored == cfg
        assert restored.network_centric == mode

    def test_network_centric_store_helper(self):
        assert ConfederationConfig(network_centric="store").network_centric_store
        assert ConfederationConfig(network_centric=True).network_centric_store
        assert not ConfederationConfig(network_centric="client").network_centric_store
        assert not ConfederationConfig().network_centric_store

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown config keys"):
            ConfederationConfig.from_dict({"stoer": "memory"})

    def test_unknown_workload_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown workload keys"):
            ConfederationConfig.from_dict({"workload": {"sede": 1}})


class TestValidation:
    def test_duplicate_peers_rejected(self):
        with pytest.raises(ConfigError, match="duplicate peer"):
            ConfederationConfig(peers=(1, 1, 2)).validate()

    def test_trust_must_reference_known_peers(self):
        with pytest.raises(ConfigError, match="unknown peers"):
            ConfederationConfig(peers=(1, 2), trust={1: {9: 1}}).validate()

    def test_unknown_network_centric_mode_rejected(self):
        with pytest.raises(ConfigError, match="network_centric"):
            ConfederationConfig(network_centric="controller").validate()

    def test_network_centric_modes_constant_is_what_validate_accepts(self):
        # NETWORK_CENTRIC_MODES is the public accepted-values list
        # (config UIs iterate it); validate() consults the same tuple,
        # so the two can never drift apart.
        from repro.confed import NETWORK_CENTRIC_MODES

        assert NETWORK_CENTRIC_MODES == (False, True, "client", "store")
        for mode in NETWORK_CENTRIC_MODES:
            assert (
                ConfederationConfig(network_centric=mode).validate()
                .network_centric
                == mode
            )

    def test_unknown_instance_backend_rejected(self):
        with pytest.raises(ConfigError, match="instance backend"):
            ConfederationConfig(instance_backend="redis").validate()

    def test_unknown_store_backend_fails_at_open(self):
        config = ConfederationConfig(store="cassandra")
        with pytest.raises(ConfigError, match="unknown store backend"):
            Confederation(config).open()

    def test_validation_happens_at_construction(self):
        with pytest.raises(ConfigError):
            Confederation(ConfederationConfig(peers=(1, 1)))


class TestEvaluationShape:
    def test_evaluation_builds_peer_range(self):
        cfg = ConfederationConfig.evaluation(4)
        assert cfg.peers == (1, 2, 3, 4)

    def test_evaluation_forwards_overrides(self):
        cfg = ConfederationConfig.evaluation(2, store="central", rounds=9)
        assert cfg.store == "central"
        assert cfg.rounds == 9
